package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bgperf/internal/cluster"
	"bgperf/internal/core"
)

// startNode binds a real listener, builds a cluster-mode Server advertising
// that address, and serves it — the serve-layer analogue of one bgperfd.
// The peer list must include the node's own address.
func startNode(t *testing.T, ln net.Listener, peers []string) *Server {
	t.Helper()
	s := newTest(t, Options{
		Self:           ln.Addr().String(),
		Peers:          peers,
		HealthInterval: -1, // membership is static for the test
	})
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return s
}

// listen binds an ephemeral localhost port.
func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// TestClusterShardsSweepAcrossPeers pins the distributed path end to end:
// a sweep sent to one node forwards each point to its ring owner, the
// forwarded answers carry the peer's address, no point fails, and the
// remote peer performed real solves for its shard.
func TestClusterShardsSweepAcrossPeers(t *testing.T) {
	lnA, lnB := listen(t), listen(t)
	peers := []string{lnA.Addr().String(), lnB.Addr().String()}
	sA := startNode(t, lnA, peers)
	sB := startNode(t, lnB, peers)

	// A grid wide enough that both peers own some points (128 virtual
	// nodes make a starved peer on 16 keys astronomically unlikely).
	resp, err := http.Post("http://"+peers[0]+"/v1/sweep", "application/json",
		strings.NewReader(sweepBody(16)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep via node A: status %d, %v: %s", resp.StatusCode, err, body)
	}
	var sweep SweepResponse
	if err := json.Unmarshal(body, &sweep); err != nil {
		t.Fatal(err)
	}
	var forwarded int
	for i, r := range sweep.Results {
		if r.Error != nil || r.Metrics == nil {
			t.Fatalf("point %d failed: %+v", i, r)
		}
		if r.Peer != "" {
			if r.Peer != peers[1] {
				t.Fatalf("point %d forwarded to %q, not the known peer %q", i, r.Peer, peers[1])
			}
			forwarded++
		}
	}
	if forwarded == 0 {
		t.Fatal("no point was forwarded to the remote peer")
	}
	if st := sA.Stats(); st.Forwarded != int64(forwarded) {
		t.Fatalf("node A forwarded counter = %d, want %d", st.Forwarded, forwarded)
	}
	if st := sB.Stats(); st.Solves == 0 {
		t.Fatal("remote peer answered forwards without solving anything")
	}

	// Parity across the wire: a forwarded point's metrics are byte-equal
	// to solving the same point directly at its owner.
	for i, r := range sweep.Results {
		if r.Peer == "" {
			continue
		}
		direct, err := http.Post("http://"+peers[1]+"/v1/solve", "application/json",
			strings.NewReader(fmt.Sprintf(`{"workload":"email","utilization":0.2,"bgProb":%.2f}`,
				0.05+0.05*float64(i))))
		if err != nil {
			t.Fatal(err)
		}
		directBody, _ := io.ReadAll(direct.Body)
		direct.Body.Close()
		var dres PointResult
		if err := json.Unmarshal(directBody, &dres); err != nil {
			t.Fatal(err)
		}
		got, _ := json.Marshal(r.Metrics)
		want, _ := json.Marshal(dres.Metrics)
		if string(got) != string(want) {
			t.Fatalf("forwarded metrics differ from the owner's own answer\n got:  %s\n want: %s", got, want)
		}
		break // one point suffices
	}
}

// TestClusterDeadPeerFallsBackLocally pins the degrade path at the serve
// layer: when a point's owner is unreachable, the node solves it locally
// instead of failing the request.
func TestClusterDeadPeerFallsBackLocally(t *testing.T) {
	dead := "127.0.0.1:1" // reserved port: connections are refused
	s := newTest(t, Options{
		Self:           "self:0",
		Peers:          []string{"self:0", dead},
		HealthInterval: -1,
	})
	req, key := pointOwnedBy(t, s, dead)
	rec := postJSON(t, s.Handler(), "/v1/solve", req)
	var res PointResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || res.Error != nil || res.Metrics == nil {
		t.Fatalf("fallback solve failed: %d %s", rec.Code, rec.Body)
	}
	if res.Peer != "" {
		t.Fatalf("locally-degraded point claims peer %q", res.Peer)
	}
	if res.Key != key {
		t.Fatalf("answered key %q, want %q", res.Key, key)
	}
	if st := s.Stats(); st.ForwardFailures == 0 {
		t.Fatal("forward-failure counter never moved")
	}
}

// TestForwardedHeaderAnswersLocally pins loop prevention: a request a peer
// already routed here is answered locally even when the ring says another
// peer owns it — no forward is attempted at all.
func TestForwardedHeaderAnswersLocally(t *testing.T) {
	other := "127.0.0.1:1"
	s := newTest(t, Options{
		Self:           "self:0",
		Peers:          []string{"self:0", other},
		HealthInterval: -1,
	})
	body, _ := pointOwnedBy(t, s, other)
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "1")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("forwarded request got %d: %s", rec.Code, rec.Body)
	}
	if st := s.Stats(); st.Forwarded != 0 || st.ForwardFailures != 0 {
		t.Fatalf("forwarded request re-forwarded: %+v", st)
	}
}

// TestClusterzEndpoint pins the operator surface: cluster mode exposes the
// membership table, single-node mode reports {"enabled": false}.
func TestClusterzEndpoint(t *testing.T) {
	single := newTest(t, Options{})
	rec := doGet(t, single.Handler(), "/clusterz")
	if !strings.Contains(rec.Body.String(), `"enabled": false`) {
		t.Fatalf("single-node /clusterz = %s", rec.Body)
	}

	clustered := newTest(t, Options{
		Self:           "self:0",
		Peers:          []string{"self:0", "peer:1"},
		HealthInterval: -1,
	})
	rec = doGet(t, clustered.Handler(), "/clusterz")
	var got struct {
		Enabled bool                 `json:"enabled"`
		Peers   []cluster.PeerStatus `json:"peers"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !got.Enabled || len(got.Peers) != 2 || !got.Peers[0].Self {
		t.Fatalf("clustered /clusterz = %s", rec.Body)
	}
}

// pointOwnedBy scans bgProb values until it finds a parameter point whose
// cache key the ring assigns to the given peer, returning the request body
// and the key. With 128 virtual nodes a handful of probes always suffices.
func pointOwnedBy(t *testing.T, s *Server, peer string) (body, key string) {
	t.Helper()
	for i := 1; i < 1000; i++ {
		body = fmt.Sprintf(`{"workload":"email","utilization":0.2,"bgProb":%.4f}`, float64(i)/1000)
		var req SolveRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		cfg, err := req.Config()
		if err != nil {
			t.Fatal(err)
		}
		k, err := core.CacheKey(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if owner, local := s.cl.Owner(k); !local && owner == peer {
			return body, k
		}
	}
	t.Fatal("no point owned by the peer in 1000 probes")
	return "", ""
}
