// Package serve implements the HTTP serving layer of the bgperfd daemon: a
// long-running solver-as-a-service front-end over the analytic engine.
//
// The serving stack layers three mechanisms over core.Model.Solve, all keyed
// by the canonical configuration hash (core.CacheKey):
//
//   - an LRU solve cache (bounded entry count and byte budget) — identical
//     parameter points are answered without touching the QBD solver;
//   - singleflight request coalescing — N concurrent requests for the same
//     uncached point cost exactly one solve, with the followers sharing the
//     leader's result;
//   - per-request deadlines and graceful draining — requests carry a
//     context deadline (504 on expiry), and a draining server answers new
//     work with 503 while in-flight solves complete.
//
// Two more layers turn the single process into a deployable tier (both are
// opt-in; see docs/OPERATIONS.md):
//
//   - a persistent disk cache (internal/cas) under the LRU — on a memory
//     miss the daemon consults a content-addressed on-disk store keyed by
//     the same CacheKey, so every point ever solved survives restarts and
//     a re-warmed sweep re-solves nothing;
//   - cluster mode (internal/cluster) — a static peer list is consistent-
//     hashed over the key space, each point is forwarded to its owning
//     peer (which holds that shard's memory and disk cache), and a dead or
//     draining peer's shard degrades to a local solve instead of failing.
//
// /v1/sweep additionally streams: a request with Accept:
// application/x-ndjson receives one PointResult per line, in request
// order, each written as its point finishes solving — a 10k-point grid
// starts arriving after the first solve instead of after the last. An
// admission gate (Options.MaxInFlight) bounds concurrent request work and
// sheds the overflow with 503 + Retry-After.
//
// The same stack serves the inverse solver: POST /v1/optimize answers
// capacity plans (max sustainable background probability, buffer, or idle
// rate under a foreground SLO) through a plan cache and plan coalescing
// group keyed by plan.CacheKey, and POST /v1/plan-from-trace runs the
// paper's complete workflow — upload an NDJSON trace, fit an MMPP(2),
// project the capacity plan — in one request.
//
// Endpoints: POST /v1/solve (one parameter point), POST /v1/sweep (a batch
// fanned out over the internal/par worker pool), POST /v1/optimize (one
// capacity plan), POST /v1/plan-from-trace (trace upload → fit → plan),
// GET /healthz, GET /metrics (JSON snapshot: serve-layer counters plus the
// solver diagnostics report), and GET /debug/vars (the process-wide expvar
// mirrors). Everything is instrumented through internal/obs: cache hits and
// misses, coalesced requests, in-flight solves and plans, and p50/p99 solve
// latency.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"
	"unsafe"

	"bgperf/internal/cas"
	"bgperf/internal/cluster"
	"bgperf/internal/core"
	"bgperf/internal/obs"
	"bgperf/internal/par"
	"bgperf/internal/plan"
	"bgperf/internal/qbd"
	"bgperf/internal/trace"
	"bgperf/internal/workload"
)

// Serving defaults, overridable through Options (and the bgperfd flags).
const (
	// DefaultCacheEntries bounds the solve cache to this many entries.
	DefaultCacheEntries = 4096
	// DefaultCacheBytes bounds the solve cache to this approximate size.
	DefaultCacheBytes = 64 << 20
	// DefaultRequestTimeout is the per-request solve deadline.
	DefaultRequestTimeout = 30 * time.Second
	// maxSweepPoints bounds one sweep request, as backpressure against a
	// single caller monopolizing the pool.
	maxSweepPoints = 4096
	// maxBodyBytes bounds request bodies read from the wire.
	maxBodyBytes = 8 << 20
)

// Options configures a Server. The zero value takes every default.
type Options struct {
	// CacheEntries bounds the solve cache entry count; 0 means
	// DefaultCacheEntries, negative disables caching.
	CacheEntries int
	// CacheBytes bounds the solve cache byte budget; 0 means
	// DefaultCacheBytes, negative removes the byte bound.
	CacheBytes int64
	// RequestTimeout is the per-request deadline; 0 means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// Workers bounds the sweep fan-out pool; <= 0 means one per core.
	Workers int
	// Observer optionally replaces the server's own Diagnostics collector
	// as the solver observer (tests count solves through it).
	Observer obs.Observer
	// CacheDir enables the persistent disk cache tier: solved metrics are
	// written to a content-addressed store rooted here and consulted on
	// every memory miss. Empty disables the disk tier.
	CacheDir string
	// DiskCacheBytes bounds the disk tier's size; 0 means
	// cas.DefaultMaxBytes, negative removes the bound. Ignored without
	// CacheDir.
	DiskCacheBytes int64
	// MaxInFlight enables admission control: at most this many requests
	// are served concurrently, MaxQueue more wait, and the rest are shed
	// with 503 + Retry-After. <= 0 disables the gate.
	MaxInFlight int
	// MaxQueue bounds the admission-gate wait queue; 0 means
	// DefaultMaxQueue × MaxInFlight.
	MaxQueue int
	// Self is this daemon's advertised host:port for cluster mode; it must
	// appear in Peers. Ignored without Peers.
	Self string
	// Peers enables cluster mode: the static membership (host:port,
	// including Self) whose consistent-hash ring shards the key space.
	// Empty means single-node operation.
	Peers []string
	// HealthInterval is the cluster health-probe period; 0 means
	// cluster.DefaultHealthInterval, negative disables background probes
	// (tests drive health checks directly).
	HealthInterval time.Duration
}

// Server is the bgperfd HTTP service: handlers plus the solve cache, the
// coalescing group, and the serve-layer statistics. Create it with New and
// mount Handler on an http.Server.
type Server struct {
	cache     *cache[core.Metrics]
	plans     *cache[*plan.Result]
	disk      *cas.Store
	cl        *cluster.Cluster
	gate      *gate
	group     *flightGroup[core.Metrics]
	planGroup *flightGroup[*plan.Result]
	stats     *obs.ServeCollector
	diag      *obs.Diagnostics
	observer  obs.Observer
	workers   int
	timeout   time.Duration
	draining  atomic.Bool
	mux       *http.ServeMux

	// solveBarrier, when set by tests, runs inside the leader's solve —
	// before the solver — so tests can hold a solve in flight while
	// follower requests pile onto the coalescing group.
	solveBarrier func()
}

// New returns a ready-to-mount Server over the given options: it opens
// (and scan-repairs) the disk cache when CacheDir is set, and builds the
// cluster membership when Peers is non-empty. Pair it with Close.
func New(opts Options) (*Server, error) {
	entries := opts.CacheEntries
	switch {
	case entries == 0:
		entries = DefaultCacheEntries
	case entries < 0:
		entries = 0 // disabled
	}
	bytes := opts.CacheBytes
	switch {
	case bytes == 0:
		bytes = DefaultCacheBytes
	case bytes < 0:
		bytes = 0 // unbounded
	}
	timeout := opts.RequestTimeout
	if timeout <= 0 {
		timeout = DefaultRequestTimeout
	}
	s := &Server{
		cache:     newCache[core.Metrics](entries, bytes, nil),
		plans:     newCache[*plan.Result](entries, bytes, planResultSize),
		group:     newFlightGroup[core.Metrics](),
		planGroup: newFlightGroup[*plan.Result](),
		stats:     obs.NewServeCollector(),
		diag:      obs.NewDiagnostics(),
		workers:   opts.Workers,
		timeout:   timeout,
		mux:       http.NewServeMux(),
	}
	s.observer = opts.Observer
	if s.observer == nil {
		s.observer = s.diag
	}
	s.gate = newGate(opts.MaxInFlight, opts.MaxQueue, s.stats)
	if opts.CacheDir != "" {
		disk, err := cas.Open(opts.CacheDir, cas.Options{MaxBytes: opts.DiskCacheBytes})
		if err != nil {
			return nil, err
		}
		s.disk = disk
	}
	if len(opts.Peers) > 0 {
		cl, err := cluster.New(cluster.Config{
			Self:           opts.Self,
			Peers:          opts.Peers,
			HealthInterval: opts.HealthInterval,
		})
		if err != nil {
			s.disk.Close()
			return nil, err
		}
		s.cl = cl
		cl.Start()
	}
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("/v1/plan-from-trace", s.handlePlanFromTrace)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/clusterz", s.handleClusterz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.Handle("/debug/vars", expvar.Handler())
	return s, nil
}

// Close releases the server's long-lived resources: the cluster health
// prober and the disk store. It does not drain in-flight HTTP requests —
// that is StartDrain + http.Server.Shutdown's job.
func (s *Server) Close() error {
	if s.cl != nil {
		s.cl.Close()
	}
	return s.disk.Close()
}

// DiskStats returns the disk cache tier's counters (zero without CacheDir).
func (s *Server) DiskStats() cas.Stats { return s.disk.Stats() }

// Handler returns the daemon's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDrain puts the server into draining mode: /healthz flips to 503 (so
// load balancers stop routing here) and new solve work is rejected with
// 503, while requests already in flight run to completion. Pair it with
// http.Server.Shutdown for a graceful SIGTERM path.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats returns a snapshot of the serve-layer counters.
func (s *Server) Stats() obs.ServeStats { return s.stats.Snapshot() }

// errorBody is the uniform JSON error envelope of every non-2xx response.
type errorBody struct {
	// Code echoes the HTTP status.
	Code int `json:"code"`
	// Message is the human-readable error.
	Message string `json:"message"`
	// Field names the offending request field on validation errors.
	Field string `json:"field,omitempty"`
}

// PointResult is the JSON answer for one solved parameter point: the solve
// response body, and one element of a sweep response. Exactly one of
// Metrics and Error is set.
type PointResult struct {
	// Key is the canonical cache key of the solved configuration.
	Key string `json:"key,omitempty"`
	// Cached reports that the answer came from the solve cache (either
	// tier).
	Cached bool `json:"cached,omitempty"`
	// DiskCached reports that the answer came from the persistent disk
	// tier after missing the in-memory LRU (and was promoted back into it).
	DiskCached bool `json:"diskCached,omitempty"`
	// Coalesced reports that the request shared another request's solve.
	Coalesced bool `json:"coalesced,omitempty"`
	// Peer names the cluster peer that answered the point, when it was
	// forwarded to its owner rather than solved here.
	Peer string `json:"peer,omitempty"`
	// Metrics are the solved steady-state metrics (the same JSON object
	// `bgperf solve -json` prints).
	Metrics *core.Metrics `json:"metrics,omitempty"`
	// Error describes a failed point.
	Error *errorBody `json:"error,omitempty"`
}

// SweepResponse is the JSON body answering POST /v1/sweep, index-aligned
// with the request points.
type SweepResponse struct {
	// Results holds one PointResult per requested point, in order.
	Results []PointResult `json:"results"`
}

// writeJSON writes v as an indented JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes the uniform error envelope — the same shape as a
// PointResult carrying only its error, so every failure body on every
// endpoint reads {"error": {code, message, field?}}.
func writeError(w http.ResponseWriter, status int, err error) {
	res := errResult("", err)
	finishResult(&res, status)
	writeJSON(w, status, res)
}

// statusFor maps solver errors to HTTP statuses: validation failures and
// malformed or unfittable trace uploads are the caller's fault (400),
// saturated models and infeasible SLOs are semantically unanswerable (422),
// expired deadlines are 504, anything else is a 500.
func statusFor(err error) int {
	var verr *core.ValidationError
	switch {
	case errors.As(err, &verr),
		errors.Is(err, trace.ErrFormat),
		errors.Is(err, workload.ErrFitTrace):
		return http.StatusBadRequest
	case errors.Is(err, qbd.ErrUnstable), errors.Is(err, plan.ErrInfeasible):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// planResultSize estimates the byte-budget charge of a cached plan: the
// result struct plus its neighborhood slice.
func planResultSize(p *plan.Result) int64 {
	return int64(unsafe.Sizeof(*p)) +
		int64(len(p.Neighborhood))*int64(unsafe.Sizeof(plan.Neighbor{}))
}

// reject handles the draining gate; it reports true when the request was
// refused.
func (s *Server) reject(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	s.stats.Rejected()
	writeError(w, http.StatusServiceUnavailable, errors.New("serve: draining, not accepting new work"))
	return true
}

// solvePoint answers one parameter point through the full serving
// pipeline: memory LRU → disk tier → cluster routing → coalescer →
// solver. local forces a local answer (set for requests a peer already
// routed here, so routing loops are impossible). It never panics on user
// input; all failures come back as a PointResult with Error set and the
// matching HTTP status.
func (s *Server) solvePoint(ctx context.Context, req SolveRequest, local bool) (PointResult, int) {
	s.stats.Request()
	cfg, err := req.Config()
	if err != nil {
		return errResult("", err), statusFor(err)
	}
	key, err := core.CacheKey(cfg)
	if err != nil {
		return errResult("", err), statusFor(err)
	}
	if m, ok := s.cache.Get(key); ok {
		s.stats.CacheHit()
		return PointResult{Key: key, Cached: true, Metrics: &m}, http.StatusOK
	}
	s.stats.CacheMiss()
	if m, ok := s.diskGet(key); ok {
		s.stats.DiskHit()
		s.cache.Add(key, m) // promote to the memory tier
		return PointResult{Key: key, Cached: true, DiskCached: true, Metrics: &m}, http.StatusOK
	}
	if err := ctx.Err(); err != nil {
		return errResult(key, deadlineErr(err)), http.StatusGatewayTimeout
	}
	if s.cl != nil && !local {
		if peer, isLocal := s.cl.Owner(key); !isLocal {
			if res, status, ok := s.forwardSolve(ctx, peer, req, key); ok {
				return res, status
			}
			// Forward failed: degrade to a local solve below.
		}
	}
	m, err, coalesced := s.group.Do(ctx, key, func() (core.Metrics, error) {
		if s.solveBarrier != nil {
			s.solveBarrier()
		}
		// Double-check the cache under leadership: between this request's
		// miss and its winning the coalescing group, an earlier leader for
		// the same key may have completed and populated the entry.
		if m, ok := s.cache.Get(key); ok {
			s.stats.CacheHit()
			return m, nil
		}
		if err := ctx.Err(); err != nil {
			return core.Metrics{}, deadlineErr(err)
		}
		s.stats.SolveStart()
		t0 := time.Now()
		model, err := core.NewModel(cfg)
		if err != nil {
			s.stats.SolveDone(time.Since(t0))
			return core.Metrics{}, err
		}
		sol, err := model.SolveObserved(s.observer)
		s.stats.SolveDone(time.Since(t0))
		if err != nil {
			return core.Metrics{}, err
		}
		s.cache.Add(key, sol.Metrics)
		s.diskPut(key, sol.Metrics)
		return sol.Metrics, nil
	})
	if coalesced {
		s.stats.Coalesced()
	}
	if err != nil {
		return errResult(key, err), statusFor(err)
	}
	return PointResult{Key: key, Coalesced: coalesced, Metrics: &m}, http.StatusOK
}

// errResult wraps err into a PointResult, naming the offending field for
// validation failures; the status code is stamped later by finishResult.
func errResult(key string, err error) PointResult {
	body := errorBody{Message: err.Error()}
	var verr *core.ValidationError
	if errors.As(err, &verr) {
		body.Field = verr.Field
	}
	return PointResult{Key: key, Error: &body}
}

// deadlineErr wraps a context error so the response explains whose clock
// expired while keeping errors.Is matchability.
func deadlineErr(err error) error {
	return fmt.Errorf("serve: request deadline expired before the solve ran: %w", err)
}

// finishResult stamps the final status code into an error result's body.
func finishResult(r *PointResult, status int) {
	if r.Error != nil {
		r.Error.Code = status
	}
}

// errShed is the body of an admission-gate 503.
var errShed = errors.New("serve: at capacity, retry shortly")

// diskGet consults the persistent tier and decodes its payload. A payload
// that fails to decode is treated as a miss (the envelope checksum makes
// this near-impossible; a format change across versions is the realistic
// path here, and re-solving is always safe).
func (s *Server) diskGet(key string) (core.Metrics, bool) {
	if s.disk == nil {
		return core.Metrics{}, false
	}
	payload, ok := s.disk.Get(key)
	if !ok {
		return core.Metrics{}, false
	}
	var m core.Metrics
	if err := json.Unmarshal(payload, &m); err != nil {
		return core.Metrics{}, false
	}
	return m, true
}

// diskPut writes a solved point through to the persistent tier,
// best-effort: a full disk must not fail the request — the solve already
// succeeded.
func (s *Server) diskPut(key string, m core.Metrics) {
	if s.disk == nil {
		return
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return
	}
	s.disk.Put(key, payload)
}

// forwardSolve routes one point to its owning peer and adapts the answer.
// ok=false means the forward failed (peer dead, breaker open) and the
// caller should solve locally; any HTTP answer from the peer — including
// its application errors — is returned as-is with ok=true. Successful
// answers are promoted into the local memory tier (not the disk tier: the
// owner's disk already holds the point, duplicating it here would defeat
// the sharding).
func (s *Server) forwardSolve(ctx context.Context, peer string, req SolveRequest, key string) (PointResult, int, bool) {
	body, err := json.Marshal(req)
	if err != nil {
		return PointResult{}, 0, false
	}
	respBody, status, err := s.cl.Forward(ctx, peer, "/v1/solve", body)
	if err != nil {
		s.stats.ForwardFailure()
		return PointResult{}, 0, false
	}
	var res PointResult
	if err := json.Unmarshal(respBody, &res); err != nil {
		s.stats.ForwardFailure()
		return PointResult{}, 0, false
	}
	s.stats.Forwarded()
	res.Peer = peer
	if status == http.StatusOK && res.Metrics != nil {
		s.cache.Add(key, *res.Metrics)
	}
	return res, status, true
}

// handleSolve answers POST /v1/solve: one parameter point.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST required"))
		return
	}
	if s.reject(w) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	release, admitted := s.gate.acquire(ctx)
	if !admitted {
		shedResponse(w)
		return
	}
	defer release()
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest,
			core.NewValidationError(core.ErrConfig, "body", "malformed request JSON: %v", err))
		return
	}
	res, status := s.solvePoint(ctx, req, r.Header.Get(cluster.ForwardedHeader) != "")
	finishResult(&res, status)
	writeJSON(w, status, res)
}

// handleSweep answers POST /v1/sweep: a batch of points fanned out over the
// worker pool. Point-level failures are embedded per result; the HTTP
// status is 200 whenever the sweep itself was well-formed.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST required"))
		return
	}
	if s.reject(w) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	release, admitted := s.gate.acquire(ctx)
	if !admitted {
		shedResponse(w)
		return
	}
	defer release()
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest,
			core.NewValidationError(core.ErrConfig, "body", "malformed request JSON: %v", err))
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest,
			core.NewValidationError(core.ErrConfig, "points", "sweep needs at least one point"))
		return
	}
	if len(req.Points) > maxSweepPoints {
		writeError(w, http.StatusBadRequest,
			core.NewValidationError(core.ErrConfig, "points", "sweep of %d points exceeds the %d-point bound", len(req.Points), maxSweepPoints))
		return
	}
	local := r.Header.Get(cluster.ForwardedHeader) != ""
	if wantsNDJSON(r) {
		s.streamSweep(ctx, w, req, local)
		return
	}
	results := make([]PointResult, len(req.Points))
	par.ForCtx(ctx, s.workers, len(req.Points), func(i int) error {
		res, status := s.solvePoint(ctx, req.Points[i], local)
		finishResult(&res, status)
		results[i] = res
		return nil
	})
	writeJSON(w, http.StatusOK, SweepResponse{Results: results})
}

// PlanPointResult is the JSON answer for one capacity plan: the
// /v1/optimize and /v1/plan-from-trace response body. Exactly one of Plan
// and Error is set; the "plan" object is byte-identical to what
// `bgperf plan -json` prints for the same request.
type PlanPointResult struct {
	// Key is the canonical plan cache key (plan.CacheKey) of the request.
	Key string `json:"key,omitempty"`
	// Cached reports that the answer came from the plan cache.
	Cached bool `json:"cached,omitempty"`
	// Coalesced reports that the request shared another request's search.
	Coalesced bool `json:"coalesced,omitempty"`
	// Fit summarizes the MMPP(2) fitted from an uploaded trace
	// (plan-from-trace only).
	Fit *FitSummary `json:"fit,omitempty"`
	// Plan is the solved capacity plan.
	Plan *plan.Result `json:"plan,omitempty"`
	// Error describes a failed plan.
	Error *errorBody `json:"error,omitempty"`
}

// FitSummary describes the arrival process fitted from an uploaded trace.
type FitSummary struct {
	// Samples is the number of trace inter-arrivals the fit consumed.
	Samples int `json:"samples"`
	// Rate is the fitted process's mean arrival rate (per ms).
	Rate float64 `json:"rate"`
	// SCV is the fitted squared coefficient of variation.
	SCV float64 `json:"scv"`
	// ACF1 is the fitted lag-1 autocorrelation.
	ACF1 float64 `json:"acf1"`
}

// planErrResult wraps err into a PlanPointResult, naming the offending
// field for validation failures.
func planErrResult(key string, err error) PlanPointResult {
	body := errorBody{Message: err.Error()}
	var verr *core.ValidationError
	if errors.As(err, &verr) {
		body.Field = verr.Field
	}
	return PlanPointResult{Key: key, Error: &body}
}

// finishPlanResult stamps the final status code into an error result's body.
func finishPlanResult(r *PlanPointResult, status int) {
	if r.Error != nil {
		r.Error.Code = status
	}
}

// planPoint answers one capacity plan through the plan cache → coalescer →
// inverse-solver pipeline — the planner's mirror of solvePoint. The cache
// key (plan.CacheKey) covers only result-determining inputs, so the runtime
// knobs stamped here (workers, observer, context) never fragment it.
func (s *Server) planPoint(ctx context.Context, cfg core.Config, slo plan.SLO, popts plan.Options) (PlanPointResult, int) {
	s.stats.Request()
	popts.Workers = s.workers
	popts.Observer = s.observer
	popts.Ctx = ctx
	key, err := plan.CacheKey(cfg, slo, popts)
	if err != nil {
		return planErrResult("", err), statusFor(err)
	}
	if p, ok := s.plans.Get(key); ok {
		s.stats.CacheHit()
		return PlanPointResult{Key: key, Cached: true, Plan: p}, http.StatusOK
	}
	s.stats.CacheMiss()
	if err := ctx.Err(); err != nil {
		return planErrResult(key, deadlineErr(err)), http.StatusGatewayTimeout
	}
	p, err, coalesced := s.planGroup.Do(ctx, key, func() (*plan.Result, error) {
		if s.solveBarrier != nil {
			s.solveBarrier()
		}
		// Double-check the cache under leadership, as solvePoint does.
		if p, ok := s.plans.Get(key); ok {
			s.stats.CacheHit()
			return p, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, deadlineErr(err)
		}
		s.stats.PlanStart()
		p, err := plan.Maximize(cfg, slo, popts)
		s.stats.PlanDone()
		if err != nil {
			return nil, err
		}
		s.plans.Add(key, p)
		return p, nil
	})
	if coalesced {
		s.stats.Coalesced()
	}
	if err != nil {
		return planErrResult(key, err), statusFor(err)
	}
	return PlanPointResult{Key: key, Coalesced: coalesced, Plan: p}, http.StatusOK
}

// handleOptimize answers POST /v1/optimize: one capacity plan.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST required"))
		return
	}
	if s.reject(w) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	release, admitted := s.gate.acquire(ctx)
	if !admitted {
		shedResponse(w)
		return
	}
	defer release()
	var req OptimizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest,
			core.NewValidationError(core.ErrConfig, "body", "malformed request JSON: %v", err))
		return
	}
	cfg, slo, popts, err := req.PlanInputs()
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	res, status := s.planPoint(ctx, cfg, slo, popts)
	finishPlanResult(&res, status)
	writeJSON(w, status, res)
}

// handlePlanFromTrace answers POST /v1/plan-from-trace: the body is a raw
// NDJSON trace (one {"interarrival": …} object per line), the query string
// carries the model and plan parameters in the same vocabulary as
// /v1/optimize. The daemon fits an MMPP(2) to the trace (the paper's
// Sec. 3.1 ingest-and-fit workflow), installs it as the arrival process,
// and answers the capacity plan.
func (s *Server) handlePlanFromTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST required"))
		return
	}
	if s.reject(w) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	release, admitted := s.gate.acquire(ctx)
	if !admitted {
		shedResponse(w)
		return
	}
	defer release()
	req, err := planTraceQuery(r.URL.Query())
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	tr, err := trace.ReadNDJSON(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	fitted, err := workload.FromTrace(tr)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	cfg, err := req.SolveRequest.ConfigWithArrival(fitted)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	popts, err := req.planOptions()
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	res, status := s.planPoint(ctx, cfg, req.SLO, popts)
	if res.Error == nil {
		res.Fit = &FitSummary{
			Samples: len(tr.Interarrivals),
			Rate:    fitted.Rate(),
			SCV:     fitted.SCV(),
			ACF1:    fitted.ACF(1),
		}
	}
	finishPlanResult(&res, status)
	writeJSON(w, status, res)
}

// planTraceQuery maps the /v1/plan-from-trace query string onto an
// OptimizeRequest (the body is reserved for the trace itself). Unknown
// parameters are rejected, mirroring DisallowUnknownFields on the JSON
// endpoints.
func planTraceQuery(q url.Values) (OptimizeRequest, error) {
	var req OptimizeRequest
	getF := func(name string, dst *float64) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return core.NewValidationError(core.ErrConfig, name,
				"bad numeric parameter %q", v)
		}
		*dst = f
		return nil
	}
	known := map[string]bool{
		"var": true, "qlenFG": true, "waitPFG": true, "respTimeFG": true,
		"tolerance": true, "maxIter": true, "utilization": true,
		"bgProb": true, "bgBuffer": true, "idleMult": true, "policy": true,
		"serviceSCV": true, "idleSCV": true,
		"modFactor": true, "bgAdmit": true, "fgThreshold": true, "deadlineRate": true,
	}
	for name := range q {
		if !known[name] {
			return req, core.NewValidationError(core.ErrConfig, name,
				"unknown query parameter %q", name)
		}
	}
	req.Var = q.Get("var")
	req.Policy = q.Get("policy")
	req.BGAdmit = q.Get("bgAdmit")
	for _, p := range []struct {
		name string
		dst  *float64
	}{
		{"qlenFG", &req.SLO.QLenFG},
		{"waitPFG", &req.SLO.WaitPFG},
		{"respTimeFG", &req.SLO.RespTimeFG},
		{"tolerance", &req.Tolerance},
		{"utilization", &req.Utilization},
		{"bgProb", &req.BGProb},
		{"idleMult", &req.IdleMult},
		{"serviceSCV", &req.ServiceSCV},
		{"idleSCV", &req.IdleSCV},
		{"modFactor", &req.ModFactor},
		{"deadlineRate", &req.DeadlineRate},
	} {
		if err := getF(p.name, p.dst); err != nil {
			return req, err
		}
	}
	for _, p := range []struct {
		name string
		set  func(int)
	}{
		{"maxIter", func(n int) { req.MaxIter = n }},
		{"bgBuffer", func(n int) { req.BGBuffer = &n }},
		{"fgThreshold", func(n int) { req.FGThreshold = n }},
	} {
		v := q.Get(p.name)
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return req, core.NewValidationError(core.ErrConfig, p.name,
				"bad integer parameter %q", v)
		}
		p.set(n)
	}
	return req, nil
}

// handleHealthz answers GET /healthz: 200 while serving, 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// metricsSnapshot is the JSON body of GET /metrics: the serve-layer
// counters plus the solver diagnostics report, and — when the matching
// tier is enabled — the disk cache and cluster membership sections.
type metricsSnapshot struct {
	// Serve is the serving-layer section: cache, coalescing, latency.
	Serve obs.ServeStats `json:"serve"`
	// Disk is the persistent cache tier's counters; present only when the
	// daemon runs with a cache directory.
	Disk *cas.Stats `json:"disk,omitempty"`
	// Cluster is the peer membership table; present only in cluster mode.
	Cluster []cluster.PeerStatus `json:"cluster,omitempty"`
	// Diag is the solver diagnostics report (stage timings, convergence,
	// workspace pools) aggregated over every solve the daemon performed.
	Diag obs.Report `json:"diag"`
}

// handleMetrics answers GET /metrics with the combined JSON snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := metricsSnapshot{
		Serve: s.stats.Snapshot(),
		Diag:  s.diag.Report(),
	}
	if s.disk != nil {
		ds := s.disk.Stats()
		snap.Disk = &ds
	}
	if s.cl != nil {
		snap.Cluster = s.cl.Status()
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleClusterz answers GET /clusterz: the membership table in cluster
// mode, {"enabled": false} otherwise. Operators watch this during rolling
// restarts to see peers leave and rejoin the ring.
func (s *Server) handleClusterz(w http.ResponseWriter, r *http.Request) {
	if s.cl == nil {
		writeJSON(w, http.StatusOK, map[string]bool{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Enabled bool                 `json:"enabled"`
		Peers   []cluster.PeerStatus `json:"peers"`
	}{true, s.cl.Status()})
}
