// Package serve implements the HTTP serving layer of the bgperfd daemon: a
// long-running solver-as-a-service front-end over the analytic engine.
//
// The serving stack layers three mechanisms over core.Model.Solve, all keyed
// by the canonical configuration hash (core.CacheKey):
//
//   - an LRU solve cache (bounded entry count and byte budget) — identical
//     parameter points are answered without touching the QBD solver;
//   - singleflight request coalescing — N concurrent requests for the same
//     uncached point cost exactly one solve, with the followers sharing the
//     leader's result;
//   - per-request deadlines and graceful draining — requests carry a
//     context deadline (504 on expiry), and a draining server answers new
//     work with 503 while in-flight solves complete.
//
// Endpoints: POST /v1/solve (one parameter point), POST /v1/sweep (a batch
// fanned out over the internal/par worker pool), GET /healthz, GET /metrics
// (JSON snapshot: serve-layer counters plus the solver diagnostics report),
// and GET /debug/vars (the process-wide expvar mirrors). Everything is
// instrumented through internal/obs: cache hits and misses, coalesced
// requests, in-flight solves, and p50/p99 solve latency.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"bgperf/internal/core"
	"bgperf/internal/obs"
	"bgperf/internal/par"
	"bgperf/internal/qbd"
)

// Serving defaults, overridable through Options (and the bgperfd flags).
const (
	// DefaultCacheEntries bounds the solve cache to this many entries.
	DefaultCacheEntries = 4096
	// DefaultCacheBytes bounds the solve cache to this approximate size.
	DefaultCacheBytes = 64 << 20
	// DefaultRequestTimeout is the per-request solve deadline.
	DefaultRequestTimeout = 30 * time.Second
	// maxSweepPoints bounds one sweep request, as backpressure against a
	// single caller monopolizing the pool.
	maxSweepPoints = 4096
	// maxBodyBytes bounds request bodies read from the wire.
	maxBodyBytes = 8 << 20
)

// Options configures a Server. The zero value takes every default.
type Options struct {
	// CacheEntries bounds the solve cache entry count; 0 means
	// DefaultCacheEntries, negative disables caching.
	CacheEntries int
	// CacheBytes bounds the solve cache byte budget; 0 means
	// DefaultCacheBytes, negative removes the byte bound.
	CacheBytes int64
	// RequestTimeout is the per-request deadline; 0 means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// Workers bounds the sweep fan-out pool; <= 0 means one per core.
	Workers int
	// Observer optionally replaces the server's own Diagnostics collector
	// as the solver observer (tests count solves through it).
	Observer obs.Observer
}

// Server is the bgperfd HTTP service: handlers plus the solve cache, the
// coalescing group, and the serve-layer statistics. Create it with New and
// mount Handler on an http.Server.
type Server struct {
	cache    *cache
	group    *flightGroup
	stats    *obs.ServeCollector
	diag     *obs.Diagnostics
	observer obs.Observer
	workers  int
	timeout  time.Duration
	draining atomic.Bool
	mux      *http.ServeMux

	// solveBarrier, when set by tests, runs inside the leader's solve —
	// before the solver — so tests can hold a solve in flight while
	// follower requests pile onto the coalescing group.
	solveBarrier func()
}

// New returns a ready-to-mount Server over the given options.
func New(opts Options) *Server {
	entries := opts.CacheEntries
	switch {
	case entries == 0:
		entries = DefaultCacheEntries
	case entries < 0:
		entries = 0 // disabled
	}
	bytes := opts.CacheBytes
	switch {
	case bytes == 0:
		bytes = DefaultCacheBytes
	case bytes < 0:
		bytes = 0 // unbounded
	}
	timeout := opts.RequestTimeout
	if timeout <= 0 {
		timeout = DefaultRequestTimeout
	}
	s := &Server{
		cache:   newCache(entries, bytes),
		group:   newFlightGroup(),
		stats:   obs.NewServeCollector(),
		diag:    obs.NewDiagnostics(),
		workers: opts.Workers,
		timeout: timeout,
		mux:     http.NewServeMux(),
	}
	s.observer = opts.Observer
	if s.observer == nil {
		s.observer = s.diag
	}
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.Handle("/debug/vars", expvar.Handler())
	return s
}

// Handler returns the daemon's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDrain puts the server into draining mode: /healthz flips to 503 (so
// load balancers stop routing here) and new solve work is rejected with
// 503, while requests already in flight run to completion. Pair it with
// http.Server.Shutdown for a graceful SIGTERM path.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats returns a snapshot of the serve-layer counters.
func (s *Server) Stats() obs.ServeStats { return s.stats.Snapshot() }

// errorBody is the uniform JSON error envelope of every non-2xx response.
type errorBody struct {
	// Code echoes the HTTP status.
	Code int `json:"code"`
	// Message is the human-readable error.
	Message string `json:"message"`
	// Field names the offending request field on validation errors.
	Field string `json:"field,omitempty"`
}

// PointResult is the JSON answer for one solved parameter point: the solve
// response body, and one element of a sweep response. Exactly one of
// Metrics and Error is set.
type PointResult struct {
	// Key is the canonical cache key of the solved configuration.
	Key string `json:"key,omitempty"`
	// Cached reports that the answer came from the solve cache.
	Cached bool `json:"cached,omitempty"`
	// Coalesced reports that the request shared another request's solve.
	Coalesced bool `json:"coalesced,omitempty"`
	// Metrics are the solved steady-state metrics (the same JSON object
	// `bgperf solve -json` prints).
	Metrics *core.Metrics `json:"metrics,omitempty"`
	// Error describes a failed point.
	Error *errorBody `json:"error,omitempty"`
}

// SweepResponse is the JSON body answering POST /v1/sweep, index-aligned
// with the request points.
type SweepResponse struct {
	// Results holds one PointResult per requested point, in order.
	Results []PointResult `json:"results"`
}

// writeJSON writes v as an indented JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes the uniform error envelope — the same shape as a
// PointResult carrying only its error, so every failure body on every
// endpoint reads {"error": {code, message, field?}}.
func writeError(w http.ResponseWriter, status int, err error) {
	res := errResult("", err)
	finishResult(&res, status)
	writeJSON(w, status, res)
}

// statusFor maps solver errors to HTTP statuses: validation failures are
// the caller's fault (400), saturated models are semantically unsolvable
// (422), expired deadlines are 504, anything else is a 500.
func statusFor(err error) int {
	var verr *core.ValidationError
	switch {
	case errors.As(err, &verr):
		return http.StatusBadRequest
	case errors.Is(err, qbd.ErrUnstable):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// reject handles the draining gate; it reports true when the request was
// refused.
func (s *Server) reject(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	s.stats.Rejected()
	writeError(w, http.StatusServiceUnavailable, errors.New("serve: draining, not accepting new work"))
	return true
}

// solvePoint answers one parameter point through the cache → coalescer →
// solver pipeline. It never panics on user input; all failures come back as
// a PointResult with Error set and the matching HTTP status.
func (s *Server) solvePoint(ctx context.Context, req SolveRequest) (PointResult, int) {
	s.stats.Request()
	cfg, err := req.Config()
	if err != nil {
		return errResult("", err), statusFor(err)
	}
	key, err := core.CacheKey(cfg)
	if err != nil {
		return errResult("", err), statusFor(err)
	}
	if m, ok := s.cache.Get(key); ok {
		s.stats.CacheHit()
		return PointResult{Key: key, Cached: true, Metrics: &m}, http.StatusOK
	}
	s.stats.CacheMiss()
	if err := ctx.Err(); err != nil {
		return errResult(key, deadlineErr(err)), http.StatusGatewayTimeout
	}
	m, err, coalesced := s.group.Do(ctx, key, func() (core.Metrics, error) {
		if s.solveBarrier != nil {
			s.solveBarrier()
		}
		// Double-check the cache under leadership: between this request's
		// miss and its winning the coalescing group, an earlier leader for
		// the same key may have completed and populated the entry.
		if m, ok := s.cache.Get(key); ok {
			s.stats.CacheHit()
			return m, nil
		}
		if err := ctx.Err(); err != nil {
			return core.Metrics{}, deadlineErr(err)
		}
		s.stats.SolveStart()
		t0 := time.Now()
		model, err := core.NewModel(cfg)
		if err != nil {
			s.stats.SolveDone(time.Since(t0))
			return core.Metrics{}, err
		}
		sol, err := model.SolveObserved(s.observer)
		s.stats.SolveDone(time.Since(t0))
		if err != nil {
			return core.Metrics{}, err
		}
		s.cache.Add(key, sol.Metrics)
		return sol.Metrics, nil
	})
	if coalesced {
		s.stats.Coalesced()
	}
	if err != nil {
		return errResult(key, err), statusFor(err)
	}
	return PointResult{Key: key, Coalesced: coalesced, Metrics: &m}, http.StatusOK
}

// errResult wraps err into a PointResult, naming the offending field for
// validation failures; the status code is stamped later by finishResult.
func errResult(key string, err error) PointResult {
	body := errorBody{Message: err.Error()}
	var verr *core.ValidationError
	if errors.As(err, &verr) {
		body.Field = verr.Field
	}
	return PointResult{Key: key, Error: &body}
}

// deadlineErr wraps a context error so the response explains whose clock
// expired while keeping errors.Is matchability.
func deadlineErr(err error) error {
	return fmt.Errorf("serve: request deadline expired before the solve ran: %w", err)
}

// finishResult stamps the final status code into an error result's body.
func finishResult(r *PointResult, status int) {
	if r.Error != nil {
		r.Error.Code = status
	}
}

// handleSolve answers POST /v1/solve: one parameter point.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST required"))
		return
	}
	if s.reject(w) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest,
			core.NewValidationError(core.ErrConfig, "body", "malformed request JSON: %v", err))
		return
	}
	res, status := s.solvePoint(ctx, req)
	finishResult(&res, status)
	writeJSON(w, status, res)
}

// handleSweep answers POST /v1/sweep: a batch of points fanned out over the
// worker pool. Point-level failures are embedded per result; the HTTP
// status is 200 whenever the sweep itself was well-formed.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST required"))
		return
	}
	if s.reject(w) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest,
			core.NewValidationError(core.ErrConfig, "body", "malformed request JSON: %v", err))
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest,
			core.NewValidationError(core.ErrConfig, "points", "sweep needs at least one point"))
		return
	}
	if len(req.Points) > maxSweepPoints {
		writeError(w, http.StatusBadRequest,
			core.NewValidationError(core.ErrConfig, "points", "sweep of %d points exceeds the %d-point bound", len(req.Points), maxSweepPoints))
		return
	}
	results := make([]PointResult, len(req.Points))
	par.ForCtx(ctx, s.workers, len(req.Points), func(i int) error {
		res, status := s.solvePoint(ctx, req.Points[i])
		finishResult(&res, status)
		results[i] = res
		return nil
	})
	writeJSON(w, http.StatusOK, SweepResponse{Results: results})
}

// handleHealthz answers GET /healthz: 200 while serving, 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// metricsSnapshot is the JSON body of GET /metrics: the serve-layer
// counters plus the solver diagnostics report.
type metricsSnapshot struct {
	// Serve is the serving-layer section: cache, coalescing, latency.
	Serve obs.ServeStats `json:"serve"`
	// Diag is the solver diagnostics report (stage timings, convergence,
	// workspace pools) aggregated over every solve the daemon performed.
	Diag obs.Report `json:"diag"`
}

// handleMetrics answers GET /metrics with the combined JSON snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, metricsSnapshot{
		Serve: s.stats.Snapshot(),
		Diag:  s.diag.Report(),
	})
}
