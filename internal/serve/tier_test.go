package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// sweepBody builds a small Fig-5-style grid: the email workload at 20%
// load across n background probabilities.
func sweepBody(n int) string {
	body := `{"points":[`
	for i := 0; i < n; i++ {
		if i > 0 {
			body += ","
		}
		body += fmt.Sprintf(`{"workload":"email","utilization":0.2,"bgProb":%.2f}`, 0.05+0.05*float64(i))
	}
	return body + `]}`
}

// TestDiskTierSurvivesRestart pins the acceptance bar of the persistent
// tier: a sweep served twice across a daemon restart re-solves zero
// points — every answer on the second pass is a disk hit, and the
// disk-hit counter equals the grid size.
func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	const grid = 8
	body := sweepBody(grid)

	counter1 := &solveCounter{}
	s1 := newTest(t, Options{CacheDir: dir, Observer: counter1})
	if rec := postJSON(t, s1.Handler(), "/v1/sweep", body); rec.Code != http.StatusOK {
		t.Fatalf("first sweep: status %d: %s", rec.Code, rec.Body)
	}
	if counter1.count() != grid {
		t.Fatalf("first sweep ran %d solves, want %d", counter1.count(), grid)
	}
	if ds := s1.DiskStats(); ds.Writes != grid || ds.Entries != grid {
		t.Fatalf("disk tier after first sweep: %+v, want %d writes and entries", ds, grid)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// "Restart": a fresh server over the same cache directory. Its memory
	// LRU is empty, so every point must come from disk — and none from the
	// solver.
	counter2 := &solveCounter{}
	s2 := newTest(t, Options{CacheDir: dir, Observer: counter2})
	rec := postJSON(t, s2.Handler(), "/v1/sweep", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("second sweep: status %d: %s", rec.Code, rec.Body)
	}
	if counter2.count() != 0 {
		t.Fatalf("second sweep ran %d solves, want 0", counter2.count())
	}
	st := s2.Stats()
	if st.DiskHits != grid {
		t.Fatalf("disk hits = %d, want %d (the grid size)", st.DiskHits, grid)
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if r.Error != nil || r.Metrics == nil {
			t.Fatalf("point %d failed after restart: %+v", i, r)
		}
		if !r.Cached || !r.DiskCached {
			t.Fatalf("point %d not flagged as a disk hit: %+v", i, r)
		}
	}
}

// TestDiskHitPromotesToMemory pins tier layering: a disk hit promotes the
// entry into the memory LRU, so the next request for the same point is a
// pure memory hit that never touches the disk store again.
func TestDiskHitPromotesToMemory(t *testing.T) {
	dir := t.TempDir()

	s1 := newTest(t, Options{CacheDir: dir})
	if rec := postJSON(t, s1.Handler(), "/v1/solve", fig5Body); rec.Code != http.StatusOK {
		t.Fatalf("solve: status %d: %s", rec.Code, rec.Body)
	}
	s1.Close()

	s2 := newTest(t, Options{CacheDir: dir})
	// First request: memory miss, disk hit, promotion.
	var res PointResult
	rec := postJSON(t, s2.Handler(), "/v1/solve", fig5Body)
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Cached || !res.DiskCached {
		t.Fatalf("first request after restart not a disk hit: %+v", res)
	}
	// Second request: the promoted entry answers from memory.
	rec = postJSON(t, s2.Handler(), "/v1/solve", fig5Body)
	res = PointResult{}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Cached || res.DiskCached {
		t.Fatalf("promoted entry did not answer from memory: %+v", res)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.CacheHits != 1 {
		t.Fatalf("disk hits = %d, cache hits = %d; want 1 and 1", st.DiskHits, st.CacheHits)
	}
	if sol := s2.Stats().Solves; sol != 0 {
		t.Fatalf("restart re-solved %d points, want 0", sol)
	}
}

// TestMetricsReportsDiskSection pins the /metrics shape: a disk-backed
// daemon exposes a "disk" section, a plain one omits it.
func TestMetricsReportsDiskSection(t *testing.T) {
	s := newTest(t, Options{CacheDir: t.TempDir()})
	rec := doGet(t, s.Handler(), "/metrics")
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap["disk"]; !ok {
		t.Fatalf("disk-backed /metrics missing disk section: %s", rec.Body)
	}

	plain := newTest(t, Options{})
	rec = doGet(t, plain.Handler(), "/metrics")
	snap = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap["disk"]; ok {
		t.Fatalf("diskless /metrics has a disk section: %s", rec.Body)
	}
}
