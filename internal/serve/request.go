package serve

import (
	"math"
	"strings"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/phtype"
	"bgperf/internal/plan"
	"bgperf/internal/workload"
)

// SolveRequest is the JSON body of POST /v1/solve: one parameter point of
// the paper's model, in the same vocabulary as the bgperf CLI flags. Fields
// left at their zero value take the CLI defaults noted below, so a request
// and the equivalent `bgperf solve` invocation describe — and therefore
// cache-key to — the same model.
type SolveRequest struct {
	// Workload names the arrival process: email, softdev, useraccounts,
	// email-lowacf, email-ipp, or poisson (the CLI catalog).
	Workload string `json:"workload"`
	// Utilization rescales the workload to this foreground load; 0 keeps
	// the native trace load. Values >= 1 are accepted and reach the solver,
	// which reports the overloaded model as unstable (HTTP 422).
	Utilization float64 `json:"utilization,omitempty"`
	// BGProb is the probability a foreground completion spawns a background
	// job (the paper's p). Unlike the CLI flag it has no implicit default:
	// absent means 0.
	BGProb float64 `json:"bgProb"`
	// BGBuffer is the background buffer capacity X; nil means the paper
	// default of 5 (0 is a valid explicit value: drop all BG work).
	BGBuffer *int `json:"bgBuffer,omitempty"`
	// IdleMult is the mean idle wait in multiples of the 6 ms service time;
	// 0 means 1.
	IdleMult float64 `json:"idleMult,omitempty"`
	// Policy selects idle-wait re-arming: per-job (default) or per-period.
	Policy string `json:"policy,omitempty"`
	// ServiceSCV sets the service-time SCV at the 6 ms mean; 0 means 1
	// (exponential), <1 fits an Erlang, >1 a hyperexponential.
	ServiceSCV float64 `json:"serviceSCV,omitempty"`
	// IdleSCV sets the idle-wait SCV at the chosen mean; 0 means 1.
	IdleSCV float64 `json:"idleSCV,omitempty"`
	// ModFactor is the capacity-modulation factor φ ∈ (0, 1]: while any
	// background work is in the system the server runs at rate φ·µ. 0 means
	// 1 (no modulation).
	ModFactor float64 `json:"modFactor,omitempty"`
	// BGAdmit selects the background admission policy: all (default),
	// util-threshold, or deadline.
	BGAdmit string `json:"bgAdmit,omitempty"`
	// FGThreshold is the util-threshold policy's K: a spawned background job
	// is admitted only when at most K foreground jobs are waiting. Only
	// valid with bgAdmit "util-threshold".
	FGThreshold int `json:"fgThreshold,omitempty"`
	// DeadlineRate is the deadline policy's renege rate δ: each waiting
	// background job abandons at rate δ. Required with (and only valid
	// with) bgAdmit "deadline".
	DeadlineRate float64 `json:"deadlineRate,omitempty"`
}

// SweepRequest is the JSON body of POST /v1/sweep: a batch of independent
// parameter points fanned out over the daemon's worker pool. Each point
// passes through the same cache and coalescing path as a single solve.
type SweepRequest struct {
	// Points are the parameter points to solve, answered index-aligned.
	Points []SolveRequest `json:"points"`
}

// OptimizeRequest is the JSON body of POST /v1/optimize: one capacity-plan
// point. The embedded SolveRequest fields describe the base model exactly
// as /v1/solve would (same defaults, same vocabulary); the plan fields
// select the decision variable, the SLO to preserve, and the search knobs.
// The base model's value of the searched variable is irrelevant — the
// search overrides it — and is normalized out of the plan cache key.
type OptimizeRequest struct {
	SolveRequest
	// SLO bounds the foreground metrics the plan must preserve; at least
	// one of qlenFG, waitPFG, respTimeFG must be set.
	SLO plan.SLO `json:"slo"`
	// Var names the decision variable: p (default), x, alpha, or mod.
	Var string `json:"var,omitempty"`
	// Tolerance is the convergence tolerance of the continuous searches;
	// 0 means the planner default (1e-4).
	Tolerance float64 `json:"tolerance,omitempty"`
	// MaxIter bounds the bisection iterations; 0 means the planner
	// default (64).
	MaxIter int `json:"maxIter,omitempty"`
}

// PlanInputs resolves the request into the planner's inputs: the validated
// base config (through the same ConfigWithArrival path as a solve), the
// SLO, and the search options with the daemon-independent knobs filled in.
// The caller stamps the runtime knobs (workers, observer, context) before
// searching. Errors are *core.ValidationError naming the request field.
func (r OptimizeRequest) PlanInputs() (core.Config, plan.SLO, plan.Options, error) {
	cfg, err := r.SolveRequest.Config()
	if err != nil {
		return core.Config{}, plan.SLO{}, plan.Options{}, err
	}
	opts, err := r.planOptions()
	if err != nil {
		return core.Config{}, plan.SLO{}, plan.Options{}, err
	}
	return cfg, r.SLO, opts, nil
}

// planOptions validates and resolves the search knobs shared by
// /v1/optimize and /v1/plan-from-trace.
func (r OptimizeRequest) planOptions() (plan.Options, error) {
	v, err := plan.ParseVar(r.Var)
	if err != nil {
		return plan.Options{}, err
	}
	if r.Tolerance < 0 || math.IsNaN(r.Tolerance) || math.IsInf(r.Tolerance, 0) {
		return plan.Options{}, core.NewValidationError(core.ErrConfig, "tolerance",
			"tolerance %g must be positive and finite", r.Tolerance)
	}
	if r.MaxIter < 0 {
		return plan.Options{}, core.NewValidationError(core.ErrConfig, "maxIter",
			"maxIter %d must be positive", r.MaxIter)
	}
	return plan.Options{Var: v, Tol: r.Tolerance, MaxIter: r.MaxIter}, nil
}

// workloadByName resolves a catalog workload (the CLI's vocabulary).
func workloadByName(name string) (*arrival.MAP, error) {
	switch strings.ToLower(name) {
	case "email":
		return workload.Email()
	case "softdev", "software-development":
		return workload.SoftwareDevelopment()
	case "useraccounts", "user-accounts":
		return workload.UserAccounts()
	case "email-lowacf":
		return workload.EmailLowACF()
	case "email-ipp":
		return workload.EmailIPP()
	case "poisson":
		return workload.EmailPoisson()
	default:
		return nil, core.NewValidationError(core.ErrConfig, "workload",
			"unknown workload %q (want email | softdev | useraccounts | email-lowacf | email-ipp | poisson)", name)
	}
}

// Config resolves the request into a validated core.Config, applying the
// CLI-compatible defaults. Errors are *core.ValidationError with the
// offending request field, so handlers map them to 400 responses verbatim.
func (r SolveRequest) Config() (core.Config, error) {
	m, err := workloadByName(r.Workload)
	if err != nil {
		return core.Config{}, err
	}
	return r.ConfigWithArrival(m)
}

// ConfigWithArrival resolves the request against an explicit arrival
// process instead of a catalog workload — the plan-from-trace path, where
// the arrival MAP is fitted from an uploaded trace. The Workload field is
// ignored; Utilization (if set) rescales the given process exactly as it
// would a catalog workload. This is the single defaulting point shared by
// /v1/solve, /v1/optimize, /v1/plan-from-trace, and the bgperf CLI, so the
// same parameters always describe — and cache-key to — the same model.
func (r SolveRequest) ConfigWithArrival(m *arrival.MAP) (core.Config, error) {
	var err error
	if r.Utilization < 0 {
		return core.Config{}, core.NewValidationError(core.ErrConfig, "utilization",
			"utilization %g must be non-negative", r.Utilization)
	}
	switch {
	case r.Utilization > 0 && r.Utilization < 1:
		if m, err = workload.AtUtilization(m, r.Utilization); err != nil {
			return core.Config{}, err
		}
	case r.Utilization >= 1:
		// Deliberately overloaded points are structurally valid; the QBD
		// solver reports them as unstable, which the daemon maps to 422.
		if m, err = m.WithRate(r.Utilization * workload.ServiceRatePerMs); err != nil {
			return core.Config{}, err
		}
	}
	buffer := 5
	if r.BGBuffer != nil {
		buffer = *r.BGBuffer
	}
	idleMult := r.IdleMult
	if idleMult == 0 {
		idleMult = 1
	}
	if idleMult < 0 {
		return core.Config{}, core.NewValidationError(core.ErrConfig, "idleMult",
			"idle-wait multiplier %g must be positive", idleMult)
	}
	policyName := r.Policy
	if policyName == "" {
		policyName = "per-job"
	}
	policy, err := core.ParseIdleWaitPolicy(policyName)
	if err != nil {
		return core.Config{}, err
	}
	serviceSCV := r.ServiceSCV
	if serviceSCV == 0 {
		serviceSCV = 1
	}
	idleSCV := r.IdleSCV
	if idleSCV == 0 {
		idleSCV = 1
	}
	admit, err := core.ParseBGAdmission(r.BGAdmit)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		Arrival:      m,
		BGProb:       r.BGProb,
		BGBuffer:     buffer,
		IdlePolicy:   policy,
		ModFactor:    r.ModFactor,
		BGAdmit:      admit,
		FGThreshold:  r.FGThreshold,
		DeadlineRate: r.DeadlineRate,
	}
	idleMean := idleMult * workload.MeanServiceTimeMs
	if idleSCV == 1 {
		cfg.IdleRate = 1 / idleMean
	} else {
		idle, err := phtype.FitTwoMoment(idleMean, idleSCV)
		if err != nil {
			return core.Config{}, err
		}
		cfg.IdleWait = idle
	}
	if serviceSCV == 1 {
		cfg.ServiceRate = workload.ServiceRatePerMs
	} else {
		svc, err := phtype.FitTwoMoment(workload.MeanServiceTimeMs, serviceSCV)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Service = svc
	}
	return cfg, nil
}
