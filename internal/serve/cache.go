package serve

import (
	"container/list"
	"sync"
	"unsafe"
)

// entryOverhead approximates the per-entry bookkeeping cost charged against
// the byte budget on top of the key and the value payload: the list
// element, the map bucket share, and the entry struct itself.
const entryOverhead = 128

// cache is a concurrency-safe LRU of solved values keyed by a canonical
// request hash (core.CacheKey for metrics, plan.CacheKey for capacity
// plans). It is doubly bounded: by entry count and by an approximate byte
// budget; inserting past either bound evicts from the least-recently-used
// end. Identical keys always carry bit-identical values (the solver and the
// planner are deterministic), so Add never needs to compare or overwrite
// payloads — re-adding an existing key just refreshes its recency.
type cache[V any] struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List
	items      map[string]*list.Element

	// sizeOf estimates the payload bytes of one value for the byte budget;
	// nil charges the shallow struct size (right for flat values like
	// core.Metrics, an undercount for pointer-rich ones).
	sizeOf func(V) int64
}

// cacheEntry is one key → value binding plus its charged size.
type cacheEntry[V any] struct {
	key  string
	v    V
	size int64
}

// newCache returns an LRU bounded to maxEntries entries and maxBytes
// approximate bytes, charging sizeOf(v) per value (nil means the shallow
// struct size). maxEntries <= 0 disables caching entirely (Get always
// misses, Add discards); maxBytes <= 0 means no byte bound.
func newCache[V any](maxEntries int, maxBytes int64, sizeOf func(V) int64) *cache[V] {
	return &cache[V]{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		sizeOf:     sizeOf,
	}
}

// entrySize charges the key bytes, the value payload, and the fixed
// overhead against the byte budget.
func (c *cache[V]) entrySize(key string, v V) int64 {
	n := int64(len(key)) + entryOverhead
	if c.sizeOf != nil {
		return n + c.sizeOf(v)
	}
	return n + int64(unsafe.Sizeof(v))
}

// Get returns the cached value for key and refreshes its recency.
func (c *cache[V]) Get(key string) (V, bool) {
	var zero V
	if c == nil || c.maxEntries <= 0 {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry[V]).v, true
}

// Add inserts key → v, evicting least-recently-used entries until both
// bounds hold again. Adding a present key only refreshes its recency.
func (c *cache[V]) Add(key string, v V) {
	if c == nil || c.maxEntries <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	e := &cacheEntry[V]{key: key, v: v, size: c.entrySize(key, v)}
	c.items[key] = c.ll.PushFront(e)
	c.bytes += e.size
	for c.ll.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes && c.ll.Len() > 1) {
		c.evictOldest()
	}
}

// evictOldest removes the least-recently-used entry; callers hold c.mu.
func (c *cache[V]) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*cacheEntry[V])
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size
}

// Len returns the current entry count.
func (c *cache[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the approximate bytes currently charged.
func (c *cache[V]) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
