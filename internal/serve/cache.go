package serve

import (
	"container/list"
	"sync"
	"unsafe"

	"bgperf/internal/core"
)

// entryOverhead approximates the per-entry bookkeeping cost charged against
// the byte budget on top of the key and the metrics payload: the list
// element, the map bucket share, and the entry struct itself.
const entryOverhead = 128

// cache is a concurrency-safe LRU of solved metrics keyed by the canonical
// Config hash (core.CacheKey). It is doubly bounded: by entry count and by
// an approximate byte budget; inserting past either bound evicts from the
// least-recently-used end. Identical keys always carry bit-identical
// metrics (the solver is deterministic), so Add never needs to compare or
// overwrite payloads — re-adding an existing key just refreshes its recency.
type cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List
	items      map[string]*list.Element
}

// cacheEntry is one key → metrics binding plus its charged size.
type cacheEntry struct {
	key  string
	m    core.Metrics
	size int64
}

// newCache returns an LRU bounded to maxEntries entries and maxBytes
// approximate bytes. maxEntries <= 0 disables caching entirely (Get always
// misses, Add discards); maxBytes <= 0 means no byte bound.
func newCache(maxEntries int, maxBytes int64) *cache {
	return &cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// entrySize charges the key bytes, the metrics struct, and the fixed
// overhead against the byte budget.
func entrySize(key string) int64 {
	return int64(len(key)) + int64(unsafe.Sizeof(core.Metrics{})) + entryOverhead
}

// Get returns the cached metrics for key and refreshes its recency.
func (c *cache) Get(key string) (core.Metrics, bool) {
	if c == nil || c.maxEntries <= 0 {
		return core.Metrics{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return core.Metrics{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).m, true
}

// Add inserts key → m, evicting least-recently-used entries until both
// bounds hold again. Adding a present key only refreshes its recency.
func (c *cache) Add(key string, m core.Metrics) {
	if c == nil || c.maxEntries <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	e := &cacheEntry{key: key, m: m, size: entrySize(key)}
	c.items[key] = c.ll.PushFront(e)
	c.bytes += e.size
	for c.ll.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes && c.ll.Len() > 1) {
		c.evictOldest()
	}
}

// evictOldest removes the least-recently-used entry; callers hold c.mu.
func (c *cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size
}

// Len returns the current entry count.
func (c *cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the approximate bytes currently charged.
func (c *cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
