package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"bgperf/internal/core"
)

func TestFlightGroupSingleCall(t *testing.T) {
	g := newFlightGroup[core.Metrics]()
	var calls atomic.Int64
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	const n = 8

	// A known leader enters first and blocks inside fn …
	var leaderWG sync.WaitGroup
	leaderWG.Add(1)
	go func() {
		defer leaderWG.Done()
		m, err, co := g.Do(context.Background(), "k", func() (core.Metrics, error) {
			calls.Add(1)
			close(leaderIn)
			<-release
			return metricsN(42), nil
		})
		if err != nil || co || m.QLenFG != 42 {
			t.Errorf("leader: %v %v %v", m.QLenFG, err, co)
		}
	}()
	<-leaderIn

	// … then n followers pile on while the call is in flight.
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err, co := g.Do(context.Background(), "k", func() (core.Metrics, error) {
				calls.Add(1)
				return metricsN(-1), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if !co {
				t.Error("follower did not coalesce")
			}
			if m.QLenFG != 42 {
				t.Errorf("follower got %v, want the leader's 42", m.QLenFG)
			}
		}()
	}
	// Release the leader only after every follower is parked on its call.
	for g.waiters.Load() != n {
	}
	close(release)
	wg.Wait()
	leaderWG.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want exactly 1", got)
	}
}

func TestFlightGroupFollowerDeadline(t *testing.T) {
	g := newFlightGroup[core.Metrics]()
	block := make(chan struct{})
	leaderIn := make(chan struct{})
	go g.Do(context.Background(), "k", func() (core.Metrics, error) {
		close(leaderIn)
		<-block
		return metricsN(1), nil
	})
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, co := g.Do(ctx, "k", func() (core.Metrics, error) {
		t.Fatal("follower must not run fn")
		return core.Metrics{}, nil
	})
	if !co {
		t.Fatal("caller should have coalesced onto the blocked leader")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	close(block)
}

func TestFlightGroupErrorShared(t *testing.T) {
	g := newFlightGroup[core.Metrics]()
	sentinel := errors.New("boom")
	_, err, _ := g.Do(context.Background(), "k", func() (core.Metrics, error) {
		return core.Metrics{}, sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("leader error lost: %v", err)
	}
	// The failed call must not wedge the key: a later call runs fresh.
	m, err, co := g.Do(context.Background(), "k", func() (core.Metrics, error) {
		return metricsN(7), nil
	})
	if err != nil || co || m.QLenFG != 7 {
		t.Fatalf("key wedged after error: %v %v %v", m.QLenFG, err, co)
	}
}
