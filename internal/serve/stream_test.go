package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postNDJSON posts a sweep asking for the streamed representation.
func postNDJSON(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestStreamMatchesBatchBytes pins the parity satellite: line i of the
// NDJSON stream is byte-identical to the compact encoding of element i of
// the batch response for the same sweep — a streaming client and a batch
// client see exactly the same objects in exactly the same order.
func TestStreamMatchesBatchBytes(t *testing.T) {
	const grid = 6
	body := sweepBody(grid)

	// Fresh servers for each representation, so both runs start cold and
	// no cached/coalesced flags differ between them.
	batchSrv := newTest(t, Options{})
	rec := postJSON(t, batchSrv.Handler(), "/v1/sweep", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch sweep: status %d: %s", rec.Code, rec.Body)
	}
	var batch SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}

	streamSrv := newTest(t, Options{})
	srec := postNDJSON(t, streamSrv.Handler(), body)
	if srec.Code != http.StatusOK {
		t.Fatalf("streamed sweep: status %d: %s", srec.Code, srec.Body)
	}
	if ct := srec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}

	var lines [][]byte
	sc := bufio.NewScanner(bytes.NewReader(srec.Body.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != grid {
		t.Fatalf("stream emitted %d lines, want %d", len(lines), grid)
	}
	for i, res := range batch.Results {
		want, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lines[i], want) {
			t.Errorf("line %d differs from batch element\n stream: %s\n batch:  %s", i, lines[i], want)
		}
	}
	if st := streamSrv.Stats(); st.Streams != 1 {
		t.Fatalf("streams counter = %d, want 1", st.Streams)
	}
}

// TestStreamWithoutAcceptStaysBatch pins content negotiation: the NDJSON
// path is opt-in, a plain sweep still answers the JSON batch body.
func TestStreamWithoutAcceptStaysBatch(t *testing.T) {
	s := newTest(t, Options{})
	rec := postJSON(t, s.Handler(), "/v1/sweep", sweepBody(2))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("batch body not a SweepResponse: %v", err)
	}
	if st := s.Stats(); st.Streams != 0 {
		t.Fatalf("streams counter = %d, want 0", st.Streams)
	}
}

// TestStreamStopsOnCancel pins disconnect handling: a client that goes
// away mid-stream stops the emitter (and, through the shared context, the
// remaining solves) instead of running the sweep to completion.
func TestStreamStopsOnCancel(t *testing.T) {
	s := newTest(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())

	// Hold every solve at the barrier until the client cancels.
	released := make(chan struct{})
	s.solveBarrier = func() {
		cancel() // the "disconnect" happens while the first point solves
		<-released
	}
	defer close(released)

	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(sweepBody(4))).WithContext(ctx)
	req.Header.Set("Accept", "application/x-ndjson")
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after client cancel")
	}
}
