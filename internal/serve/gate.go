package serve

import (
	"context"
	"net/http"

	"bgperf/internal/obs"
)

// DefaultMaxQueue multiplies MaxInFlight to size the admission-gate wait
// queue when Options.MaxQueue is zero.
const DefaultMaxQueue = 2

// gate is the admission controller: at most maxInFlight requests hold a
// slot concurrently, at most maxQueue more wait for one, and everything
// beyond that is shed immediately with 503 + Retry-After. A nil gate
// admits everything (admission control disabled).
type gate struct {
	slots chan struct{}
	queue chan struct{}
	stats *obs.ServeCollector
}

// newGate returns an admission gate of maxInFlight slots and a wait queue
// of maxQueue (0 means DefaultMaxQueue × maxInFlight). maxInFlight <= 0
// disables admission control entirely (returns nil).
func newGate(maxInFlight, maxQueue int, stats *obs.ServeCollector) *gate {
	if maxInFlight <= 0 {
		return nil
	}
	if maxQueue <= 0 {
		maxQueue = DefaultMaxQueue * maxInFlight
	}
	return &gate{
		slots: make(chan struct{}, maxInFlight),
		queue: make(chan struct{}, maxQueue),
		stats: stats,
	}
}

// acquire admits the request, waiting in the bounded queue if every slot
// is busy. It returns a release closure and true on admission; false means
// the request was shed (queue full) or its context ended while queued.
func (g *gate) acquire(ctx context.Context) (release func(), admitted bool) {
	if g == nil {
		return func() {}, true
	}
	// Fast path: a free slot, no queueing.
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, true
	default:
	}
	// Queue if there is room; shed otherwise.
	select {
	case g.queue <- struct{}{}:
	default:
		g.stats.Shed()
		return nil, false
	}
	g.stats.QueueDepth(1)
	defer func() {
		g.stats.QueueDepth(-1)
		<-g.queue
	}()
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, true
	case <-ctx.Done():
		g.stats.Shed()
		return nil, false
	}
}

// shedResponse answers a shed request: 503 with a Retry-After hint, in the
// uniform error envelope.
func shedResponse(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable,
		errShed)
}
