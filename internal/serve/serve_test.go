package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bgperf/internal/core"
	"bgperf/internal/obs"
	"bgperf/internal/workload"
)

// solveCounter is an obs.Observer that counts completed analytic solves —
// the obs-counter pin that a cached point never re-invokes the QBD solver.
type solveCounter struct {
	mu     sync.Mutex
	solves int
}

func (c *solveCounter) StageDone(s obs.Stage, d time.Duration) {
	if s == obs.StageMetrics {
		c.mu.Lock()
		c.solves++
		c.mu.Unlock()
	}
}
func (c *solveCounter) RIteration(int, float64)           {}
func (c *solveCounter) RSolved(int, float64, float64)     {}
func (c *solveCounter) WorkspaceStats(obs.WorkspaceStats) {}
func (c *solveCounter) SimRun(obs.SimCounters)            {}
func (c *solveCounter) ReplicationDone(int, int)          {}
func (c *solveCounter) FitDone(obs.FitDiag)               {}

func (c *solveCounter) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.solves
}

// newTest builds a Server over opts, failing the test on construction
// errors and closing it on cleanup.
func newTest(t testing.TB, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// postJSON posts body to path on h and returns the recorded response.
func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// doGet issues a GET against path on h and returns the recorded response.
func doGet(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// fig5Body is a Figure 5 parameter point: the E-mail workload at 20%
// foreground load with the paper defaults.
const fig5Body = `{"workload":"email","utilization":0.2,"bgProb":0.3}`

func TestHandleSolveErrors(t *testing.T) {
	cases := []struct {
		name       string
		body       string
		timeout    time.Duration
		wantStatus int
		wantField  string
		wantInMsg  string
	}{
		{
			name:       "malformed JSON",
			body:       `{"workload":`,
			wantStatus: http.StatusBadRequest,
			wantField:  "body",
		},
		{
			name:       "unknown request field",
			body:       `{"workload":"email","bogus":1}`,
			wantStatus: http.StatusBadRequest,
			wantField:  "body",
		},
		{
			name:       "unknown workload",
			body:       `{"workload":"nfs","bgProb":0.3}`,
			wantStatus: http.StatusBadRequest,
			wantField:  "workload",
		},
		{
			name:       "BG probability out of range",
			body:       `{"workload":"email","utilization":0.2,"bgProb":1.5}`,
			wantStatus: http.StatusBadRequest,
			wantField:  "BGProb",
		},
		{
			name:       "negative buffer",
			body:       `{"workload":"email","utilization":0.2,"bgProb":0.3,"bgBuffer":-1}`,
			wantStatus: http.StatusBadRequest,
			wantField:  "BGBuffer",
		},
		{
			name:       "bad policy",
			body:       `{"workload":"email","utilization":0.2,"bgProb":0.3,"policy":"sometimes"}`,
			wantStatus: http.StatusBadRequest,
			wantField:  "IdlePolicy",
		},
		{
			name:       "utilization out of range",
			body:       `{"workload":"email","utilization":-0.2,"bgProb":0.3}`,
			wantStatus: http.StatusBadRequest,
			wantField:  "utilization",
		},
		{
			name: "unstable model",
			// Overload: arrivals at 105% of the service rate leave the QBD
			// with non-negative drift — no stationary distribution exists.
			body:       `{"workload":"email","utilization":1.05,"bgProb":0.3}`,
			wantStatus: http.StatusUnprocessableEntity,
			wantInMsg:  "not positive recurrent",
		},
		{
			name:       "deadline exceeded",
			body:       fig5Body,
			timeout:    time.Nanosecond,
			wantStatus: http.StatusGatewayTimeout,
			wantInMsg:  "deadline",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newTest(t, Options{RequestTimeout: tc.timeout})
			if tc.name == "deadline exceeded" {
				// Hold the solve until the 1 ns request deadline has long
				// expired, so the ctx check inside the leader path fires
				// deterministically.
				s.solveBarrier = func() { time.Sleep(5 * time.Millisecond) }
			}
			rec := postJSON(t, s.Handler(), "/v1/solve", tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body %s", rec.Code, tc.wantStatus, rec.Body)
			}
			var res PointResult
			if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
				t.Fatalf("response not JSON: %v", err)
			}
			if res.Error == nil {
				t.Fatalf("want error body, got %s", rec.Body)
			}
			if res.Error.Code != tc.wantStatus {
				t.Errorf("error.code = %d, want %d", res.Error.Code, tc.wantStatus)
			}
			if tc.wantField != "" && res.Error.Field != tc.wantField {
				t.Errorf("error.field = %q, want %q (message %q)", res.Error.Field, tc.wantField, res.Error.Message)
			}
			if tc.wantInMsg != "" && !strings.Contains(res.Error.Message, tc.wantInMsg) {
				t.Errorf("error.message %q does not mention %q", res.Error.Message, tc.wantInMsg)
			}
		})
	}
}

func TestSolveMethodNotAllowed(t *testing.T) {
	s := newTest(t, Options{})
	for _, path := range []string{"/v1/solve", "/v1/sweep"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %d, want 405", path, rec.Code)
		}
	}
}

// TestSolveCacheSkipsSolver pins the tentpole cache contract: the second
// identical request is answered from the cache without invoking the QBD
// solver, observed through both the serve counters and an obs.Observer
// counting completed solves.
func TestSolveCacheSkipsSolver(t *testing.T) {
	counter := &solveCounter{}
	s := newTest(t, Options{Observer: counter})

	first := postJSON(t, s.Handler(), "/v1/solve", fig5Body)
	if first.Code != http.StatusOK {
		t.Fatalf("first solve: %d %s", first.Code, first.Body)
	}
	var r1 PointResult
	json.Unmarshal(first.Body.Bytes(), &r1)
	if r1.Cached || r1.Metrics == nil || r1.Key == "" {
		t.Fatalf("first response should be an uncached solve with a key: %s", first.Body)
	}
	if counter.count() != 1 {
		t.Fatalf("first request: %d solver invocations, want 1", counter.count())
	}

	second := postJSON(t, s.Handler(), "/v1/solve", fig5Body)
	if second.Code != http.StatusOK {
		t.Fatalf("second solve: %d %s", second.Code, second.Body)
	}
	var r2 PointResult
	json.Unmarshal(second.Body.Bytes(), &r2)
	if !r2.Cached {
		t.Fatalf("second identical request not served from cache: %s", second.Body)
	}
	if counter.count() != 1 {
		t.Fatalf("cached request re-invoked the solver: %d solves", counter.count())
	}
	if r2.Key != r1.Key {
		t.Fatalf("cache key drifted between identical requests: %s vs %s", r1.Key, r2.Key)
	}
	b1, _ := json.Marshal(r1.Metrics)
	b2, _ := json.Marshal(r2.Metrics)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached metrics differ from solved metrics:\n%s\n%s", b1, b2)
	}
	st := s.Stats()
	if st.Solves != 1 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("serve counters: %+v, want 1 solve / 1 hit / 1 miss", st)
	}
}

// TestSolveMatchesBatchCLI pins the serving/batch parity acceptance
// criterion: the daemon's metrics object for a Figure 5 point is
// byte-identical to marshaling the metrics the analytic engine returns
// directly — the same numbers `bgperf solve -json` prints.
func TestSolveMatchesBatchCLI(t *testing.T) {
	m, err := workload.Email()
	if err != nil {
		t.Fatal(err)
	}
	if m, err = workload.AtUtilization(m, 0.2); err != nil {
		t.Fatal(err)
	}
	model, err := core.NewModel(core.Config{
		Arrival:     m,
		ServiceRate: workload.ServiceRatePerMs,
		BGProb:      0.3,
		BGBuffer:    5,
		IdleRate:    1 / workload.MeanServiceTimeMs,
	})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(sol.Metrics)
	if err != nil {
		t.Fatal(err)
	}

	s := newTest(t, Options{})
	rec := postJSON(t, s.Handler(), "/v1/solve", fig5Body)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve: %d %s", rec.Code, rec.Body)
	}
	var res struct {
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, res.Metrics); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compact.Bytes(), want) {
		t.Fatalf("daemon metrics differ from direct solve:\ndaemon %s\ndirect %s", compact.Bytes(), want)
	}
}

// TestConcurrentIdenticalRequestsCoalesce pins the coalescing contract
// under the race detector: M concurrent identical requests perform exactly
// one solve, every response carries the same metrics, and the other M−1
// requests are accounted as coalesced or cache hits.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	const m = 16
	counter := &solveCounter{}
	s := newTest(t, Options{Observer: counter})
	release := make(chan struct{})
	s.solveBarrier = func() { <-release }

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	bodies := make([][]byte, m)
	codes := make([]int, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(fig5Body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			bodies[i] = buf.Bytes()
			codes[i] = resp.StatusCode
		}(i)
	}
	// Hold the one in-flight solve until the other M−1 requests are parked
	// on its coalescing group, so every request provably shares the single
	// solve rather than being answered by a completed cache entry.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if s.group.waiters.Load() == m-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers never parked: %+v (waiters %d)", s.Stats(), s.group.waiters.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	var wantMetrics json.RawMessage
	for i := 0; i < m; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, codes[i], bodies[i])
		}
		var res struct {
			Metrics json.RawMessage `json:"metrics"`
		}
		if err := json.Unmarshal(bodies[i], &res); err != nil {
			t.Fatal(err)
		}
		if wantMetrics == nil {
			wantMetrics = res.Metrics
		} else if !bytes.Equal(wantMetrics, res.Metrics) {
			t.Fatalf("request %d returned different metrics", i)
		}
	}
	if got := counter.count(); got != 1 {
		t.Fatalf("observed %d solver invocations for %d identical requests, want exactly 1", got, m)
	}
	st := s.Stats()
	if st.Solves != 1 {
		t.Fatalf("serve counter says %d solves, want 1 (%+v)", st.Solves, st)
	}
	if st.Coalesced != m-1 || st.CacheHits != 0 {
		t.Fatalf("coalesced = %d (want %d), cache hits = %d (want 0): %+v", st.Coalesced, m-1, st.CacheHits, st)
	}
}

func TestSweep(t *testing.T) {
	counter := &solveCounter{}
	s := newTest(t, Options{Observer: counter})
	body := `{"points":[
		{"workload":"email","utilization":0.2,"bgProb":0.3},
		{"workload":"email","utilization":0.2,"bgProb":0.6},
		{"workload":"nfs","bgProb":0.3},
		{"workload":"email","utilization":0.2,"bgProb":0.3}
	]}`
	rec := postJSON(t, s.Handler(), "/v1/sweep", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep: %d %s", rec.Code, rec.Body)
	}
	var res SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 4 {
		t.Fatalf("want 4 index-aligned results, got %d", len(res.Results))
	}
	for _, i := range []int{0, 1, 3} {
		if res.Results[i].Metrics == nil || res.Results[i].Error != nil {
			t.Fatalf("point %d should have solved: %+v", i, res.Results[i])
		}
	}
	if res.Results[2].Error == nil || res.Results[2].Error.Code != http.StatusBadRequest || res.Results[2].Error.Field != "workload" {
		t.Fatalf("point 2 should fail validation with field=workload: %+v", res.Results[2].Error)
	}
	// Points 0 and 3 are identical: they share one solve via cache or
	// coalescing, so only the two distinct valid points hit the solver.
	if got := counter.count(); got != 2 {
		t.Fatalf("sweep performed %d solves, want 2 (duplicate point must not re-solve)", got)
	}
	b0, _ := json.Marshal(res.Results[0].Metrics)
	b3, _ := json.Marshal(res.Results[3].Metrics)
	if !bytes.Equal(b0, b3) {
		t.Fatalf("identical points returned different metrics")
	}
}

func TestSweepValidation(t *testing.T) {
	s := newTest(t, Options{})
	cases := []struct {
		name, body string
		wantField  string
	}{
		{"empty points", `{"points":[]}`, "points"},
		{"malformed", `{"points":`, "body"},
		{"too many points", fmt.Sprintf(`{"points":[%s]}`, strings.Repeat(fig5Body+",", maxSweepPoints)+fig5Body), "points"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postJSON(t, s.Handler(), "/v1/sweep", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", rec.Code)
			}
			var res PointResult
			if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
				t.Fatal(err)
			}
			if res.Error == nil {
				t.Fatalf("want error envelope, got %s", rec.Body)
			}
			if res.Error.Field != tc.wantField {
				t.Fatalf("field = %q, want %q", res.Error.Field, tc.wantField)
			}
		})
	}
}

func TestHealthzAndDraining(t *testing.T) {
	s := newTest(t, Options{})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}

	s.StartDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", rec.Code)
	}
	solve := postJSON(t, s.Handler(), "/v1/solve", fig5Body)
	if solve.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining solve = %d, want 503", solve.Code)
	}
	sweep := postJSON(t, s.Handler(), "/v1/sweep", `{"points":[`+fig5Body+`]}`)
	if sweep.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining sweep = %d, want 503", sweep.Code)
	}
	if st := s.Stats(); st.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", st.Rejected)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTest(t, Options{})
	postJSON(t, s.Handler(), "/v1/solve", fig5Body)
	postJSON(t, s.Handler(), "/v1/solve", fig5Body)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	var snap struct {
		Serve obs.ServeStats `json:"serve"`
		Diag  obs.Report     `json:"diag"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, rec.Body)
	}
	if snap.Serve.Requests != 2 || snap.Serve.Solves != 1 || snap.Serve.CacheHits != 1 {
		t.Fatalf("serve section: %+v", snap.Serve)
	}
	if snap.Serve.LatencySamples != 1 || snap.Serve.LatencyP50Ms <= 0 {
		t.Fatalf("latency section not populated: %+v", snap.Serve)
	}
	if snap.Diag.Solves != 1 || snap.Diag.RSolves != 1 {
		t.Fatalf("diag section should show the one solve: %+v", snap.Diag)
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "bgperf.serve.cache_hits") {
		t.Fatalf("debug/vars missing serve counters: %d", rec.Code)
	}
}
