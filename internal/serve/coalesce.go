package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightGroup coalesces concurrent work on the same cache key: the first
// request for a key (the leader) runs the function; requests arriving while
// that call is in flight (followers) block on its completion and share the
// result, so N identical concurrent requests cost exactly one solve (or one
// plan — the group is generic over the result type). This is a purpose-built
// singleflight with two twists the serving layer needs: followers report
// whether they coalesced (for the hit counters), and a follower whose
// context expires stops waiting and returns the context error — one slow
// call cannot pin a faster caller past its deadline.
type flightGroup[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]

	// waiters counts followers currently parked on an in-flight call. Tests
	// read it to sequence deterministic coalescing scenarios; nothing in the
	// serving path depends on it.
	waiters atomic.Int64
}

// flightCall is one in-flight call; done closes when val/err are final.
type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// newFlightGroup returns an empty coalescing group.
func newFlightGroup[V any]() *flightGroup[V] {
	return &flightGroup[V]{calls: make(map[string]*flightCall[V])}
}

// Do returns the result of fn for key, running fn at most once across
// concurrent callers with the same key. The boolean reports whether this
// caller coalesced onto another caller's call (false for the leader). A
// follower returns ctx.Err() if its context ends before the leader
// finishes; the leader itself always runs fn to completion so its result
// can still populate the cache for later requests.
func (g *flightGroup[V]) Do(ctx context.Context, key string, fn func() (V, error)) (V, error, bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		g.waiters.Add(1)
		defer g.waiters.Add(-1)
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err(), true
		}
	}
	c := &flightCall[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
