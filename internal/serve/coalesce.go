package serve

import (
	"context"
	"sync"
	"sync/atomic"

	"bgperf/internal/core"
)

// flightGroup coalesces concurrent solves of the same cache key: the first
// request for a key (the leader) runs the solver; requests arriving while
// that solve is in flight (followers) block on its completion and share the
// result, so N identical concurrent requests cost exactly one solve. This
// is a purpose-built singleflight with two twists the serving layer needs:
// followers report whether they coalesced (for the hit counters), and a
// follower whose context expires stops waiting and returns the context
// error — one slow solve cannot pin a faster caller past its deadline.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall

	// waiters counts followers currently parked on an in-flight call. Tests
	// read it to sequence deterministic coalescing scenarios; nothing in the
	// serving path depends on it.
	waiters atomic.Int64
}

// flightCall is one in-flight solve; done closes when val/err are final.
type flightCall struct {
	done chan struct{}
	val  core.Metrics
	err  error
}

// newFlightGroup returns an empty coalescing group.
func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do returns the result of fn for key, running fn at most once across
// concurrent callers with the same key. The boolean reports whether this
// caller coalesced onto another caller's solve (false for the leader). A
// follower returns ctx.Err() if its context ends before the leader
// finishes; the leader itself always runs fn to completion so its result
// can still populate the cache for later requests.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (core.Metrics, error)) (core.Metrics, error, bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		g.waiters.Add(1)
		defer g.waiters.Add(-1)
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return core.Metrics{}, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
