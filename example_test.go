package bgperf_test

import (
	"fmt"

	"bgperf"
)

// ExampleSolve demonstrates the quickstart flow from the package comment.
func ExampleSolve() {
	email, _ := bgperf.EmailWorkload()
	arr, _ := bgperf.AtUtilization(email, 0.08)
	sol, _ := bgperf.Solve(bgperf.Config{
		Arrival:     arr,
		ServiceRate: bgperf.ServiceRatePerMs,
		BGProb:      0.3,
		BGBuffer:    5,
		IdleRate:    bgperf.ServiceRatePerMs,
	})
	fmt.Printf("FG queue length: %.3f\n", sol.QLenFG)
	fmt.Printf("BG completion:   %.3f\n", sol.CompBG)
	// Output:
	// FG queue length: 0.224
	// BG completion:   0.796
}

// ExampleFitMMPP2 fits a two-state MMPP to target descriptors by moment
// matching (the paper's Sec. 3.1 workflow).
func ExampleFitMMPP2() {
	m, _ := bgperf.FitMMPP2(bgperf.FitSpec{Rate: 1, SCV: 4, Decay: 0.9})
	fmt.Printf("rate %.2f, SCV %.2f, ACF decay %.2f\n", m.Rate(), m.SCV(), m.ACFDecay())
	// Output:
	// rate 1.00, SCV 4.00, ACF decay 0.90
}

// ExampleSimulateReplications aggregates independent simulation replications
// with 95% confidence half-widths. The aggregate is bit-identical for every
// WithWorkers setting, so the output is stable.
func ExampleSimulateReplications() {
	p, _ := bgperf.Poisson(1)
	res, _ := bgperf.SimulateReplications(bgperf.SimConfig{
		Arrival:     p,
		ServiceRate: 2,
		BGProb:      0.5,
		BGBuffer:    3,
		IdleRate:    2,
		Seed:        1,
		WarmupTime:  100,
		MeasureTime: 20000,
	}, bgperf.WithReplications(8), bgperf.WithWorkers(4))
	fmt.Printf("replications: %d\n", res.Reps)
	fmt.Printf("FG queue length: %.2f ± %.2f\n", res.Mean.QLenFG, res.QLenFGHalf)
	// Output:
	// replications: 8
	// FG queue length: 1.15 ± 0.02
}

// ExamplePlan inverts the model: instead of solving metrics for a given
// background probability, it finds the maximum background probability the
// system can accept before the foreground queue-length SLO breaks.
func ExamplePlan() {
	sd, _ := bgperf.SoftwareDevelopmentWorkload()
	arr, _ := bgperf.AtUtilization(sd, 0.3)
	res, _ := bgperf.Plan(bgperf.Config{
		Arrival:     arr,
		ServiceRate: bgperf.ServiceRatePerMs,
		BGBuffer:    5,
		IdleRate:    bgperf.ServiceRatePerMs,
	}, bgperf.SLO{QLenFG: 4.2})
	fmt.Printf("max sustainable %s = %.3f\n", res.Var, res.Value)
	fmt.Printf("FG queue length at the frontier: %.3f\n", res.Metrics.QLenFG)
	// Output:
	// max sustainable p = 0.077
	// FG queue length at the frontier: 4.200
}

// ExampleWithObserver attaches a Diagnostics collector to a solve and reads
// the convergence report the -diag CLI flag would write as JSON.
func ExampleWithObserver() {
	email, _ := bgperf.EmailWorkload()
	arr, _ := bgperf.AtUtilization(email, 0.5)
	diag := bgperf.NewDiagnostics()
	_, _ = bgperf.Solve(bgperf.Config{
		Arrival:     arr,
		ServiceRate: bgperf.ServiceRatePerMs,
		BGProb:      0.6,
		BGBuffer:    5,
		IdleRate:    bgperf.ServiceRatePerMs,
	}, bgperf.WithObserver(diag))
	r := diag.Report()
	fmt.Printf("reduction iterations: %d\n", r.LastRIterations)
	fmt.Printf("residual below 1e-6: %t\n", r.LastResidual < 1e-6)
	fmt.Printf("sp(R) below 1: %t\n", r.LastSpectralRadius < 1)
	// Output:
	// reduction iterations: 25
	// residual below 1e-6: true
	// sp(R) below 1: true
}
