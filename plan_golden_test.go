package bgperf_test

// The plan-report golden pins the package's complete capacity-planning
// workflow end to end: testdata/plan_trace.ndjson (2000 requests sampled
// from the paper's e-mail MMPP, seed 1) is parsed, fitted to an MMPP(2),
// and planned against a foreground SLO; the resulting report must match
// testdata/plan_report.golden with every number reproduced to 1e-9. The
// tolerance absorbs floating-point variation across architectures while
// still catching any change to the fit, the solver, or the search.
//
// Regenerate after an intentional change with:
//
//	go test -run TestPlanFromTraceGolden -update .

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"

	"bgperf"
)

const (
	planTracePath  = "testdata/plan_trace.ndjson"
	planGoldenPath = "testdata/plan_report.golden"
	planGoldenTol  = 1e-9
)

// planGoldenReport runs the pinned workflow: ingest → fit → plan.
func planGoldenReport(t *testing.T) *bgperf.PlanResult {
	t.Helper()
	f, err := os.Open(planTracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := bgperf.ReadTraceNDJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bgperf.Config{
		ServiceRate: bgperf.ServiceRatePerMs,
		BGBuffer:    5,
		IdleRate:    bgperf.ServiceRatePerMs,
	}
	res, err := bgperf.PlanFromTrace(tr, cfg, bgperf.SLO{WaitPFG: 8e-4})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPlanFromTraceGolden(t *testing.T) {
	res := planGoldenReport(t)
	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if *updateGolden {
		if err := os.WriteFile(planGoldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", planGoldenPath)
		return
	}
	want, err := os.ReadFile(planGoldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestPlanFromTraceGolden -update .`): %v", err)
	}
	var gotV, wantV any
	if err := json.Unmarshal(got, &gotV); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(want, &wantV); err != nil {
		t.Fatalf("corrupt golden file %s: %v", planGoldenPath, err)
	}
	if diff := jsonDiff("plan", wantV, gotV, planGoldenTol); diff != "" {
		t.Errorf("plan report deviates from %s beyond %g; if intentional, run `go test -run TestPlanFromTraceGolden -update .` and review the diff\n%s",
			planGoldenPath, planGoldenTol, diff)
	}
}

// jsonDiff structurally compares two unmarshalled JSON values, allowing
// numbers to differ by at most tol, and returns a description of the first
// few mismatches ("" when equal).
func jsonDiff(path string, want, got any, tol float64) string {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			return fmt.Sprintf("%s: want object, got %T\n", path, got)
		}
		if len(w) != len(g) {
			return fmt.Sprintf("%s: want %d keys, got %d\n", path, len(w), len(g))
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				return fmt.Sprintf("%s.%s: missing\n", path, k)
			}
			if d := jsonDiff(path+"."+k, wv, gv, tol); d != "" {
				return d
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok || len(w) != len(g) {
			return fmt.Sprintf("%s: array shape differs (want %d elements)\n", path, len(w))
		}
		for i := range w {
			if d := jsonDiff(fmt.Sprintf("%s[%d]", path, i), w[i], g[i], tol); d != "" {
				return d
			}
		}
	case float64:
		g, ok := got.(float64)
		if !ok || math.Abs(g-w) > tol || math.IsNaN(g) != math.IsNaN(w) {
			return fmt.Sprintf("%s: want %.17g, got %v\n", path, w, got)
		}
	default:
		if want != got {
			return fmt.Sprintf("%s: want %v, got %v\n", path, want, got)
		}
	}
	return ""
}
