module bgperf

go 1.22
