package bgperf_test

import (
	"bytes"
	"math"
	"testing"

	"bgperf"
)

func TestSolveQuickstart(t *testing.T) {
	email, err := bgperf.EmailWorkload()
	if err != nil {
		t.Fatal(err)
	}
	arr, err := bgperf.AtUtilization(email, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := bgperf.Solve(bgperf.Config{
		Arrival:     arr,
		ServiceRate: bgperf.ServiceRatePerMs,
		BGProb:      0.3,
		BGBuffer:    5,
		IdleRate:    bgperf.ServiceRatePerMs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.QLenFG <= 0 || sol.CompBG <= 0 || sol.CompBG > 1 {
		t.Errorf("implausible metrics: %+v", sol.Metrics)
	}
	if math.Abs(sol.UtilFG-0.1) > 1e-6 {
		t.Errorf("UtilFG = %v, want 0.1", sol.UtilFG)
	}
}

func TestNewMAPFacade(t *testing.T) {
	m, err := bgperf.NewMAP(
		[][]float64{{-3, 1}, {2, -2.5}},
		[][]float64{{2, 0}, {0, 0.5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rate() <= 0 {
		t.Errorf("rate = %v", m.Rate())
	}
	if _, err := bgperf.NewMAP([][]float64{{1, 2}}, [][]float64{{1}}); err == nil {
		t.Error("mismatched matrices accepted")
	}
	if _, err := bgperf.NewMAP([][]float64{{1}, {2, 3}}, [][]float64{{1}}); err == nil {
		t.Error("ragged D0 accepted")
	}
}

func TestArrivalFacades(t *testing.T) {
	if _, err := bgperf.Poisson(2); err != nil {
		t.Error(err)
	}
	if _, err := bgperf.MMPP2(1, 1, 2, 0.1); err != nil {
		t.Error(err)
	}
	if _, err := bgperf.IPP(1, 0.1, 0.1); err != nil {
		t.Error(err)
	}
	fit, err := bgperf.FitMMPP2(bgperf.FitSpec{Rate: 1, SCV: 4, Decay: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.SCV()-4) > 0.01 {
		t.Errorf("fit scv = %v", fit.SCV())
	}
}

func TestWorkloadFacades(t *testing.T) {
	for name, f := range map[string]func() (*bgperf.MAP, error){
		"email":    bgperf.EmailWorkload,
		"softdev":  bgperf.SoftwareDevelopmentWorkload,
		"useracct": bgperf.UserAccountsWorkload,
	} {
		if _, err := f(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSimulateFacade(t *testing.T) {
	p, err := bgperf.Poisson(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bgperf.Simulate(bgperf.SimConfig{
		Arrival:     p,
		ServiceRate: 2,
		BGProb:      0.5,
		BGBuffer:    3,
		IdleRate:    2,
		Seed:        1,
		WarmupTime:  100,
		MeasureTime: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.QLenFG <= 0 {
		t.Errorf("QLenFG = %v", res.Metrics.QLenFG)
	}
}

func TestGenerateTraceFacade(t *testing.T) {
	p, err := bgperf.Poisson(1.0 / 75)
	if err != nil {
		t.Fatal(err)
	}
	tr := bgperf.GenerateTrace(p, 5000, 1, bgperf.ServiceRatePerMs)
	if len(tr.Interarrivals) != 5000 || len(tr.Services) != 5000 {
		t.Fatalf("trace sizes: %d/%d", len(tr.Interarrivals), len(tr.Services))
	}
	if u := tr.Utilization(); u < 0.05 || u > 0.12 {
		t.Errorf("utilization = %v, want ~0.08", u)
	}
}

func TestPHServiceFacade(t *testing.T) {
	svc, err := bgperf.PHFitTwoMoment(6, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	email, err := bgperf.EmailWorkload()
	if err != nil {
		t.Fatal(err)
	}
	arr, err := bgperf.AtUtilization(email, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := bgperf.Solve(bgperf.Config{
		Arrival:  arr,
		Service:  svc, // Erlang-4 service, 6 ms mean
		BGProb:   0.3,
		BGBuffer: 5,
		IdleRate: bgperf.ServiceRatePerMs,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Smoother-than-exponential service must beat the exponential model.
	ref, err := bgperf.Solve(bgperf.Config{
		Arrival:     arr,
		ServiceRate: bgperf.ServiceRatePerMs,
		BGProb:      0.3,
		BGBuffer:    5,
		IdleRate:    bgperf.ServiceRatePerMs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.QLenFG >= ref.QLenFG {
		t.Errorf("Erlang-4 service queue %v not below exponential %v", sol.QLenFG, ref.QLenFG)
	}
	if _, err := bgperf.PHErlang(2, 1); err != nil {
		t.Error(err)
	}
	if _, err := bgperf.PHHyperexponential([]float64{0.5, 0.5}, []float64{1, 3}); err != nil {
		t.Error(err)
	}
}

func TestGeneralConstructorsFacade(t *testing.T) {
	m, err := bgperf.MMPPGeneral(
		[]float64{1, 0.2, 0.05},
		[][]float64{{-0.02, 0.01, 0.01}, {0.01, -0.02, 0.01}, {0.005, 0.005, -0.01}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.Order() != 3 || m.SCV() <= 1 {
		t.Errorf("MMPPGeneral order %d scv %v", m.Order(), m.SCV())
	}
	if _, err := bgperf.MMPPGeneral([]float64{1}, [][]float64{{0, 1}}); err == nil {
		t.Error("ragged modulator accepted")
	}
	cox, err := bgperf.PHCoxian([]float64{2, 3}, []float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	if cox.Order() != 2 {
		t.Errorf("Coxian order %d", cox.Order())
	}
}

func TestMultiFacade(t *testing.T) {
	soft, err := bgperf.SoftwareDevelopmentWorkload()
	if err != nil {
		t.Fatal(err)
	}
	arr, err := bgperf.AtUtilization(soft, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := bgperf.SolveMulti(bgperf.MultiConfig{
		Arrival: arr, ServiceRate: bgperf.ServiceRatePerMs,
		BG1Prob: 0.2, BG2Prob: 0.4, BG1Buffer: 3, BG2Buffer: 3,
		IdleRate: bgperf.ServiceRatePerMs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.CompBG1 < sol.CompBG2 {
		t.Errorf("priority inverted: %v < %v", sol.CompBG1, sol.CompBG2)
	}
	res, err := bgperf.SimulateMulti(bgperf.MultiSimConfig{
		Arrival: arr, ServiceRate: bgperf.ServiceRatePerMs,
		BG1Prob: 0.2, BG2Prob: 0.4, BG1Buffer: 3, BG2Buffer: 3,
		IdleRate: bgperf.ServiceRatePerMs,
		Seed:     2, WarmupTime: 1e5, MeasureTime: 1e7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QLenFG <= 0 {
		t.Errorf("simulated QLenFG = %v", res.QLenFG)
	}
}

func TestServiceMAPFacade(t *testing.T) {
	ph, err := bgperf.PHErlang(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	svcMAP, err := bgperf.ServiceMAPFromPH(ph)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := bgperf.Poisson(0.6)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := bgperf.Solve(bgperf.Config{
		Arrival: ap, ServiceMAP: svcMAP, BGProb: 0.3, BGBuffer: 3, IdleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bgperf.Solve(bgperf.Config{
		Arrival: ap, Service: ph, BGProb: 0.3, BGBuffer: 3, IdleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.QLenFG-ref.QLenFG) > 1e-9*(1+ref.QLenFG) {
		t.Errorf("renewal MAP %v != PH %v", sol.QLenFG, ref.QLenFG)
	}
}

func TestTraceFacades(t *testing.T) {
	hidden, err := bgperf.MMPP2(0.01, 0.02, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	tr := bgperf.GenerateTrace(hidden, 200000, 5, 1)
	fit, err := bgperf.FitWorkloadFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Rate()-hidden.Rate())/hidden.Rate() > 0.1 {
		t.Errorf("fitted rate %v vs %v", fit.Rate(), hidden.Rate())
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := bgperf.ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Interarrivals) != len(tr.Interarrivals) {
		t.Error("round trip lost rows")
	}
}
