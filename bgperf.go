// Package bgperf evaluates the performability of systems with background
// jobs. It is a from-scratch Go implementation of the analytic model of
// Zhang, Riska, Mi, Riedel and Smirni, "Evaluating the Performability of
// Systems with Background Jobs" (DSN 2006): a single non-preemptive server
// (a disk drive) serving foreground user requests under Markov-modulated
// (bursty, autocorrelated) arrivals, with best-effort background jobs —
// WRITE verification, scrubbing, and similar maintenance work — served
// during idle periods after an idle wait, from a finite buffer.
//
// The package answers the paper's design questions: how much background
// load can a storage system accept, how does the idle-wait length trade
// foreground latency against background completion, and how strongly does
// arrival dependence (ACF) change those answers.
//
//	email, _ := bgperf.EmailWorkload()          // trace-derived MMPP
//	arr, _ := bgperf.AtUtilization(email, 0.3)  // scale to 30% FG load
//	sol, _ := bgperf.Solve(bgperf.Config{
//		Arrival:     arr,
//		ServiceRate: bgperf.ServiceRatePerMs, // 6 ms disk service
//		BGProb:      0.3,                     // 30% of FG work spawns BG
//		BGBuffer:    5,
//		IdleRate:    bgperf.ServiceRatePerMs, // idle wait ≈ service time
//	})
//	fmt.Println(sol.QLenFG, sol.CompBG)
//
// The analytic engine (internal/qbd, internal/core) solves the model's
// quasi-birth-death Markov chain with the matrix-geometric method; an
// independent event simulator (Simulate) cross-validates it and covers
// semantics outside the chain, such as deterministic idle waits.
package bgperf

import (
	"io"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/mat"
	"bgperf/internal/multiclass"
	"bgperf/internal/phtype"
	"bgperf/internal/sim"
	"bgperf/internal/trace"
	"bgperf/internal/workload"
)

// Model types, re-exported from the analytic engine.
type (
	// Config parameterizes the foreground/background model.
	Config = core.Config
	// Metrics bundles the paper's steady-state metrics.
	Metrics = core.Metrics
	// Solution is a solved model with metric and distribution queries.
	Solution = core.Solution
	// Model is a validated, solvable model instance.
	Model = core.Model
	// IdleWaitPolicy selects idle-wait re-arming semantics.
	IdleWaitPolicy = core.IdleWaitPolicy
	// Kind classifies chain states by server condition.
	Kind = core.Kind
	// BGAdmission selects the background admission policy.
	BGAdmission = core.BGAdmission
)

// Arrival-process types.
type (
	// MAP is a Markovian Arrival Process (MMPP, IPP, Poisson, …).
	MAP = arrival.MAP
	// FitSpec targets an MMPP(2) moment-matching fit.
	FitSpec = arrival.FitSpec
)

// PHDist is a phase-type distribution, usable as a non-exponential service
// law via Config.Service (the paper's footnote 3 extension).
type PHDist = phtype.Dist

// Two-priority background extension (the paper's announced future work):
// class 1 is served before class 2 whenever the idle wait expires.
type (
	// MultiConfig parameterizes the two-priority background model.
	MultiConfig = multiclass.Config
	// MultiMetrics bundles its per-class steady-state metrics.
	MultiMetrics = multiclass.Metrics
	// MultiSolution is a solved two-priority model.
	MultiSolution = multiclass.Solution
	// MultiSimConfig parameterizes the two-priority event simulator.
	MultiSimConfig = sim.MultiConfig
	// MultiSimResult holds its measured estimates.
	MultiSimResult = sim.MultiResult
)

// Simulation types.
type (
	// SimConfig parameterizes the event simulator.
	SimConfig = sim.Config
	// SimResult holds simulated estimates with confidence intervals.
	SimResult = sim.Result
	// SimReplications aggregates independent simulation replications.
	SimReplications = sim.ReplicationResult
	// IdleDist selects the simulator's idle-wait distribution.
	IdleDist = sim.IdleDist
)

// Trace types.
type (
	// Trace is a synthetic or loaded I/O trace.
	Trace = trace.Trace
	// TraceStats summarizes a trace sample.
	TraceStats = trace.Stats
)

// Idle-wait policies and distributions.
const (
	IdleWaitPerJob    = core.IdleWaitPerJob
	IdleWaitPerPeriod = core.IdleWaitPerPeriod
	IdleExponential   = sim.IdleExponential
	IdleDeterministic = sim.IdleDeterministic
)

// Chain state kinds.
const (
	KindEmpty = core.KindEmpty
	KindFG    = core.KindFG
	KindBG    = core.KindBG
	KindIdle  = core.KindIdle
)

// Background admission policies (PR 10 scenario expansion): blind admission,
// a foreground-queue threshold gate, and deadline-bounded waiting with
// reneging.
const (
	AdmitAll           = core.AdmitAll
	AdmitUtilThreshold = core.AdmitUtilThreshold
	AdmitDeadline      = core.AdmitDeadline
)

// Paper service-process constants (Sec. 3.1): exponential service with a
// 6 ms mean.
const (
	MeanServiceTimeMs = workload.MeanServiceTimeMs
	ServiceRatePerMs  = workload.ServiceRatePerMs
)

// ParseIdleWaitPolicy maps "per-job" / "per-period" back to the policy
// constants (the inverse of IdleWaitPolicy.String).
func ParseIdleWaitPolicy(s string) (IdleWaitPolicy, error) { return core.ParseIdleWaitPolicy(s) }

// ParseIdleDist maps "exponential" / "deterministic" back to the simulator
// idle-wait distributions (the inverse of IdleDist.String).
func ParseIdleDist(s string) (IdleDist, error) { return sim.ParseIdleDist(s) }

// ParseKind maps "empty" / "fg-serving" / "bg-serving" / "idle-wait" back to
// the chain state kinds (the inverse of Kind.String).
func ParseKind(s string) (Kind, error) { return core.ParseKind(s) }

// ParseBGAdmission maps "all" / "util-threshold" / "deadline" back to the
// admission policy constants (the inverse of BGAdmission.String). The empty
// string means the default, AdmitAll.
func ParseBGAdmission(s string) (BGAdmission, error) { return core.ParseBGAdmission(s) }

// NewModel validates cfg and prepares the analytic chain. It accepts the
// package options for uniformity with Solve; model construction itself is
// instrumented through Solve's observer.
func NewModel(cfg Config, opts ...Option) (*Model, error) {
	o := apply(opts)
	if o.err != nil {
		return nil, o.err
	}
	if err := ctxErr(o.ctx); err != nil {
		return nil, err
	}
	m, err := core.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	m.Tune(o.tuning())
	return m, nil
}

// Solve builds and solves the model in one call. With WithObserver it
// reports stage timings, the logarithmic-reduction convergence trace, sp(R),
// and workspace pool statistics; without, it runs the zero-overhead fast
// path.
func Solve(cfg Config, opts ...Option) (*Solution, error) {
	o := apply(opts)
	if o.err != nil {
		return nil, o.err
	}
	if err := ctxErr(o.ctx); err != nil {
		return nil, err
	}
	m, err := core.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	m.Tune(o.tuning())
	return m.SolveObserved(o.observer)
}

// CacheKey returns a canonical, collision-resistant identity for a model
// configuration: the hex SHA-256 of a tagged binary encoding of the
// validated Config (defaults applied). Identical keys imply bit-identical
// Solve results, so the key is safe for memoizing solutions — it is the
// cache key used by the bgperfd solve cache. Invalid configurations return
// the same *ValidationError that NewModel would.
func CacheKey(cfg Config) (string, error) { return core.CacheKey(cfg) }

// Simulate runs the independent event simulator. WithContext cancels the
// event loop promptly; WithObserver collects the run's event counters.
func Simulate(cfg SimConfig, opts ...Option) (*SimResult, error) {
	o := apply(opts)
	if o.err != nil {
		return nil, o.err
	}
	return sim.RunOpts(o.ctx, cfg, o.observer)
}

// SimulateReplications runs WithReplications(n) independent replications of
// cfg (seeds cfg.Seed .. cfg.Seed+n-1; default 1) on a pool bounded by
// WithWorkers (default all cores) and aggregates mean metrics with 95%
// confidence half-widths. The aggregate is identical for every worker count.
// WithContext cancels the sweep; WithObserver tracks replication progress
// and per-run counters.
func SimulateReplications(cfg SimConfig, opts ...Option) (*SimReplications, error) {
	o := apply(opts)
	if o.err != nil {
		return nil, o.err
	}
	return sim.RunReplicationsOpts(o.ctx, cfg, o.reps, o.workers, o.observer)
}

// SolveMulti builds and solves the two-priority background model, with the
// same option semantics as Solve.
func SolveMulti(cfg MultiConfig, opts ...Option) (*MultiSolution, error) {
	o := apply(opts)
	if o.err != nil {
		return nil, o.err
	}
	if err := ctxErr(o.ctx); err != nil {
		return nil, err
	}
	m, err := multiclass.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	m.Tune(o.tuning())
	return m.SolveObserved(o.observer)
}

// SimulateMulti runs the two-priority event simulator.
func SimulateMulti(cfg MultiSimConfig) (*MultiSimResult, error) { return sim.RunMulti(cfg) }

// NewMAP builds a MAP from its (D0, D1) description given as dense row
// slices.
func NewMAP(d0, d1 [][]float64) (*MAP, error) {
	m0, err := matFromRows(d0)
	if err != nil {
		return nil, err
	}
	m1, err := matFromRows(d1)
	if err != nil {
		return nil, err
	}
	return arrival.New(m0, m1)
}

// Poisson returns a Poisson arrival process.
func Poisson(rate float64) (*MAP, error) { return arrival.Poisson(rate) }

// MMPP2 returns a two-state Markov-Modulated Poisson Process with the
// paper's (v1, v2, l1, l2) parameterization (Eq. 4).
func MMPP2(v1, v2, l1, l2 float64) (*MAP, error) { return arrival.MMPP2(v1, v2, l1, l2) }

// IPP returns an Interrupted Poisson Process (bursty but uncorrelated).
func IPP(lambdaOn, onToOff, offToOn float64) (*MAP, error) {
	return arrival.IPP(lambdaOn, onToOff, offToOn)
}

// MMPPGeneral returns an n-state Markov-Modulated Poisson Process: arrivals
// at rates[i] while the modulating CTMC (given as dense generator rows)
// sits in state i.
func MMPPGeneral(rates []float64, modulator [][]float64) (*MAP, error) {
	q, err := matFromRows(modulator)
	if err != nil {
		return nil, err
	}
	return arrival.MMPP(rates, q)
}

// FitMMPP2 fits an MMPP(2) to target descriptors by moment matching. With
// WithObserver it reports a FitDiag comparing the achieved rate, SCV, lag-1
// ACF, and ACF decay against the targets.
func FitMMPP2(spec FitSpec, opts ...Option) (*MAP, error) {
	o := apply(opts)
	if o.err != nil {
		return nil, o.err
	}
	m, err := arrival.FitMMPP2(spec)
	if err != nil {
		return nil, err
	}
	if o.observer != nil {
		o.observer.FitDone(FitDiag{
			TargetRate: spec.Rate, TargetSCV: spec.SCV,
			TargetACF1: spec.ACF1, TargetDecay: spec.Decay,
			Rate: m.Rate(), SCV: m.SCV(), ACF1: m.ACF(1), Decay: m.ACFDecay(),
		})
	}
	return m, nil
}

// PHErlang returns the Erlang-k phase-type distribution (SCV = 1/k).
func PHErlang(k int, stageRate float64) (*PHDist, error) { return phtype.Erlang(k, stageRate) }

// PHHyperexponential returns a mixture-of-exponentials phase-type
// distribution (SCV > 1).
func PHHyperexponential(probs, rates []float64) (*PHDist, error) {
	return phtype.Hyperexponential(probs, rates)
}

// PHFitTwoMoment returns a phase-type distribution matching the given mean
// and SCV (Erlang for SCV < 1, exponential at 1, balanced H2 above).
func PHFitTwoMoment(mean, scv float64) (*PHDist, error) { return phtype.FitTwoMoment(mean, scv) }

// PHCoxian returns the Coxian distribution with the given per-stage rates
// and continuation probabilities.
func PHCoxian(rates, cont []float64) (*PHDist, error) { return phtype.Coxian(rates, cont) }

// ServiceMAPFromPH rewrites a phase-type law as a renewal service MAP
// (D0 = T, D1 = t·β), the starting point for building *correlated* service
// processes for Config.ServiceMAP.
func ServiceMAPFromPH(d *PHDist) (*MAP, error) {
	t := d.T()
	exit := d.ExitRates()
	beta := d.Beta()
	n := d.Order()
	d1 := make([][]float64, n)
	for i := range d1 {
		d1[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			d1[i][j] = exit[i] * beta[j]
		}
	}
	m1, err := matFromRows(d1)
	if err != nil {
		return nil, err
	}
	return arrival.New(t, m1)
}

// EmailWorkload returns the paper's E-mail server MMPP (high ACF).
func EmailWorkload() (*MAP, error) { return workload.Email() }

// SoftwareDevelopmentWorkload returns the paper's Software Development MMPP
// (low ACF).
func SoftwareDevelopmentWorkload() (*MAP, error) { return workload.SoftwareDevelopment() }

// UserAccountsWorkload returns the paper's User Accounts MMPP (lightly
// loaded, strong ACF).
func UserAccountsWorkload() (*MAP, error) { return workload.UserAccounts() }

// AtUtilization rescales a workload to a target foreground utilization at
// the paper's 6 ms service time.
func AtUtilization(m *MAP, util float64) (*MAP, error) { return workload.AtUtilization(m, util) }

// GenerateTrace samples n inter-arrival times (and exponential service
// times at serviceRate) from the MAP.
func GenerateTrace(m *MAP, n int, seed int64, serviceRate float64) *Trace {
	return trace.GenerateWithService(m, n, seed, serviceRate)
}

// FitWorkloadFromTrace fits a 2-state MMPP to a measured trace (the paper's
// Sec. 3.1 workflow: match the sample inter-arrival mean, CV, and ACF
// shape).
func FitWorkloadFromTrace(tr *Trace) (*MAP, error) { return workload.FromTrace(tr) }

// ReadTraceCSV parses a trace written by Trace.WriteCSV.
func ReadTraceCSV(r io.Reader) (*Trace, error) { return trace.ReadCSV(r) }

// matFromRows converts row slices into the internal dense matrix type.
func matFromRows(rows [][]float64) (*mat.Matrix, error) {
	return mat.FromRows(rows)
}
