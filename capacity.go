package bgperf

import (
	"io"

	"bgperf/internal/plan"
	"bgperf/internal/trace"
)

// Capacity-planning types, re-exported from the inverse solver.
type (
	// SLO is a foreground service-level objective: upper bounds on any
	// subset of the FG metrics (mean queue length, wait probability, mean
	// response time). Zero fields are unconstrained; at least one bound
	// must be set.
	SLO = plan.SLO
	// PlanVar selects the decision variable of a capacity plan.
	PlanVar = plan.Var
	// PlanResult is a solved capacity plan: the frontier value of the
	// decision variable, the metrics there, and a sensitivity
	// neighborhood.
	PlanResult = plan.Result
	// PlanNeighbor is one sensitivity point of a plan's neighborhood.
	PlanNeighbor = plan.Neighbor
)

// Decision variables for WithPlanVar.
const (
	// PlanBGProb searches the background-job spawn probability p — "how
	// much background work can the system accept?" (the default).
	PlanBGProb = plan.VarBGProb
	// PlanBGBuffer searches the background buffer size X.
	PlanBGBuffer = plan.VarBGBuffer
	// PlanIdleRate searches the idle-wait rate α — "how aggressively may
	// idle waits expire before foreground latency suffers?"
	PlanIdleRate = plan.VarIdleRate
	// PlanModFactor searches the capacity-modulation factor φ downward —
	// "how much may background work slow the server before foreground
	// latency suffers?" The frontier is the MINIMUM feasible φ.
	PlanModFactor = plan.VarModFactor
)

// ParsePlanVar maps "p" / "x" / "alpha" / "mod" (and their aliases) back to
// the decision-variable constants (the inverse of PlanVar.String).
func ParsePlanVar(s string) (PlanVar, error) { return plan.ParseVar(s) }

// Plan inverts the analytic model: it finds the frontier value of the
// decision variable selected by WithPlanVar (default PlanBGProb) for which
// cfg still meets slo, by bisection over the monotone foreground metrics —
// the maximum feasible value for PlanBGProb, PlanBGBuffer, and PlanIdleRate,
// the minimum feasible φ for PlanModFactor (deeper modulation hurts FG).
// The returned frontier is always an actually-solved feasible point, with
// the metrics there and a small sensitivity neighborhood. When even the
// most conservative setting of the variable violates slo — or the
// foreground load alone saturates the server — Plan returns ErrInfeasible
// rather than clamping. WithTolerance and WithMaxIter control convergence;
// WithWorkers, WithRScheme, WithObserver, and WithContext apply to the
// underlying solves.
func Plan(cfg Config, slo SLO, opts ...Option) (*PlanResult, error) {
	o := apply(opts)
	if o.err != nil {
		return nil, o.err
	}
	if err := ctxErr(o.ctx); err != nil {
		return nil, err
	}
	return plan.Maximize(cfg, slo, o.planOptions())
}

// PlanCacheKey returns a canonical, collision-resistant identity for a
// capacity plan: the hex SHA-256 of the validated base Config (with the
// searched variable normalized out), the SLO bounds, and the search
// parameters. Identical keys imply identical Plan results, so the key is
// safe for memoizing plans — it is the cache key used by the bgperfd
// /v1/optimize cache. Invalid inputs return the same error Plan would.
func PlanCacheKey(cfg Config, slo SLO, opts ...Option) (string, error) {
	o := apply(opts)
	if o.err != nil {
		return "", o.err
	}
	return plan.CacheKey(cfg, slo, o.planOptions())
}

// PlanFromTrace runs the paper's complete workflow — ingest, fit, project —
// in one call: it fits a 2-state MMPP to the measured trace (as
// FitWorkloadFromTrace), installs the fit as cfg.Arrival, and solves the
// capacity plan against slo. The remaining cfg fields (service law,
// background parameters, idle law) describe the system under study as in
// Plan.
func PlanFromTrace(tr *Trace, cfg Config, slo SLO, opts ...Option) (*PlanResult, error) {
	m, err := FitWorkloadFromTrace(tr)
	if err != nil {
		return nil, err
	}
	cfg.Arrival = m
	return Plan(cfg, slo, opts...)
}

// ReadTraceNDJSON parses a newline-delimited JSON trace: one
// {"interarrival": …, "service": …} object per request ("service"
// optional, but all lines must agree on its presence). NDJSON is the
// upload format of the bgperfd /v1/plan-from-trace endpoint and of
// `bgperf plan -trace`.
func ReadTraceNDJSON(r io.Reader) (*Trace, error) { return trace.ReadNDJSON(r) }
