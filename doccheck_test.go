package bgperf

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedIdentifiersDocumented enforces the documentation contract on
// the public surface: every exported identifier in the root package, in
// internal/serve (the daemon's serving layer), in internal/plan (the
// inverse solver behind Plan and /v1/optimize), in internal/cas (the
// persistent cache tier), and in internal/cluster (the peer ring) carries
// a doc comment. The API reference in docs/ and `go doc` both depend on
// this.
func TestExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range []string{".", "internal/serve", "internal/plan", "internal/cas", "internal/cluster"} {
		undocumented := missingDocs(t, dir)
		for _, id := range undocumented {
			t.Errorf("%s: exported identifier %s has no doc comment", dir, id)
		}
	}
}

// missingDocs parses every non-test Go file in dir and returns the exported
// top-level identifiers (types, funcs, methods, consts, vars, and exported
// struct fields of exported types) that lack a doc comment.
func missingDocs(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	var missing []string
	for _, pkg := range pkgs {
		for file, f := range pkg.Files {
			base := filepath.Base(file)
			for _, decl := range f.Decls {
				missing = append(missing, undocumentedInDecl(base, decl)...)
			}
		}
	}
	return missing
}

// undocumentedInDecl walks one top-level declaration and reports its
// undocumented exported identifiers, qualified by file for readable failures.
func undocumentedInDecl(file string, decl ast.Decl) []string {
	var missing []string
	report := func(name string) { missing = append(missing, file+": "+name) }
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		name := d.Name.Name
		if d.Recv != nil && len(d.Recv.List) > 0 {
			name = receiverName(d.Recv.List[0].Type) + "." + name
			if !ast.IsExported(strings.TrimPrefix(receiverName(d.Recv.List[0].Type), "*")) {
				return nil // method on an unexported type
			}
		}
		report(name)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(s.Name.Name)
				}
				if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
					for _, f := range st.Fields.List {
						for _, n := range f.Names {
							if n.IsExported() && f.Doc == nil && f.Comment == nil {
								report(s.Name.Name + "." + n.Name)
							}
						}
					}
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					// A const/var block's group comment, the spec's own doc,
					// or a trailing line comment all count.
					if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(n.Name)
					}
				}
			}
		}
	}
	return missing
}

// receiverName extracts the type name from a method receiver expression.
func receiverName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + receiverName(e.X)
	case *ast.IndexExpr: // generic receiver
		return receiverName(e.X)
	default:
		return "?"
	}
}
