package bgperf

import (
	"bgperf/internal/core"
	"bgperf/internal/plan"
	"bgperf/internal/qbd"
)

// ValidationError is the typed configuration error returned by every entry
// point that validates a Config (NewModel, Solve, Simulate,
// SimulateReplications, SolveMulti): Field names the offending field and
// Reason explains the failure. Retrieve it with errors.As:
//
//	var verr *bgperf.ValidationError
//	if errors.As(err, &verr) {
//		log.Printf("bad %s: %s", verr.Field, verr.Reason)
//	}
type ValidationError = core.ValidationError

// Sentinel errors of the analytic engine, matchable with errors.Is through
// any wrapping the entry points add.
var (
	// ErrUnstable reports a model whose offered load saturates the server:
	// the chain has no stationary distribution and no metrics exist.
	ErrUnstable = qbd.ErrUnstable
	// ErrNoConvergence reports an iterative solver (logarithmic reduction,
	// spectral iteration) that exhausted its iteration budget.
	ErrNoConvergence = qbd.ErrNoConvergence
	// ErrInfeasible reports a capacity-planning SLO (Plan, PlanFromTrace)
	// that no value of the decision variable can meet — the constraint fails
	// even with background work effectively disabled, or the foreground load
	// alone saturates the server. The plan is never silently clamped.
	ErrInfeasible = plan.ErrInfeasible
)
